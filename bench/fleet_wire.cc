// Fabric wire-protocol hot-path benchmarks (DESIGN.md §16).
//
// A lease result is the fabric's dominant message: every node pushes
// one per lease, carrying new-coverage programs, crash reports, covmap
// deltas, posterior deltas, and (optionally) a harvested shard. These
// benches pin down what the codec and the frame discipline cost so
// protocol overhead stays noise next to the campaigns themselves:
//
//  - BM_LeaseResultEncode/Decode — the full codec over a result sized
//    like a productive lease (items/s is results, bytes/s is payload);
//  - BM_FrameRoundTrip — sendFrame + recvFrame over a socketpair, the
//    complete per-message wire path including CRC on both ends;
//  - BM_RecvRejectsCorruptFrame — the defense path: how fast a CRC
//    mismatch is detected and the connection condemned.

#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "fleet/wire.h"

namespace {

using namespace sp;

/** A lease result shaped like a productive 500-slot lease. */
fleet::LeaseResultMsg
sampleResult()
{
    fleet::LeaseResultMsg msg;
    msg.lease_id = 7;
    msg.execs = 500;
    for (int i = 0; i < 24; ++i) {
        fleet::WireProgram prog;
        prog.text = "r0 = open(path=\"/dev/sp" + std::to_string(i) +
                    "\", flags=2)\nwrite(fd=r0, buf=&buf, len=64)\n"
                    "ioctl(fd=r0, cmd=0x5401, arg=&arg)\nclose(fd=r0)\n";
        for (uint32_t b = 0; b < 40; ++b)
            prog.blocks.push_back(i * 17 + b);
        for (uint64_t e = 0; e < 48; ++e)
            prog.edges.push_back((uint64_t)i << 32 | e);
        msg.programs.push_back(std::move(prog));
    }
    for (uint32_t c = 0; c < 4; ++c)
        msg.crashes.push_back({c, 100 + c * 50,
                               "r0 = open(path=\"/dev/crash\", flags=2)\n"});
    msg.have_cov = true;
    for (uint32_t b = 0; b < 300; ++b)
        msg.block_deltas.emplace_back(b, 5 + b % 11);
    for (uint32_t e = 0; e < 400; ++e)
        msg.edge_deltas.emplace_back(e, 3 + e % 7);
    msg.stray_edges = 12;
    msg.have_policy = true;
    msg.policy_name = "thompson";
    msg.pmm_share = 0.42;
    for (uint32_t a = 0; a < 12; ++a)
        msg.arms.push_back({a, 40 + a, 10 + a});
    return msg;
}

void
BM_LeaseResultEncode(benchmark::State &state)
{
    const fleet::LeaseResultMsg msg = sampleResult();
    size_t bytes = 0;
    for (auto _ : state) {
        std::vector<uint8_t> payload = msg.encode();
        bytes = payload.size();
        benchmark::DoNotOptimize(payload.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * (int64_t)bytes);
}
BENCHMARK(BM_LeaseResultEncode);

void
BM_LeaseResultDecode(benchmark::State &state)
{
    const std::vector<uint8_t> payload = sampleResult().encode();
    for (auto _ : state) {
        fleet::LeaseResultMsg msg;
        bool ok = msg.decode(payload);
        benchmark::DoNotOptimize(ok);
        benchmark::DoNotOptimize(msg.programs.data());
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * (int64_t)payload.size());
}
BENCHMARK(BM_LeaseResultDecode);

void
BM_FrameRoundTrip(benchmark::State &state)
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        state.SkipWithError("socketpair failed");
        return;
    }
    const std::vector<uint8_t> payload = sampleResult().encode();
    for (auto _ : state) {
        bool sent = fleet::sendFrame(fds[0], fleet::MsgType::LeaseResult,
                                     payload);
        fleet::Frame frame;
        fleet::RecvStatus status = fleet::recvFrame(fds[1], &frame);
        if (!sent || status != fleet::RecvStatus::Ok) {
            state.SkipWithError("frame round trip failed");
            break;
        }
        benchmark::DoNotOptimize(frame.payload.data());
    }
    ::close(fds[0]);
    ::close(fds[1]);
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() * (int64_t)(payload.size() + 16));
}
BENCHMARK(BM_FrameRoundTrip);

void
BM_RecvRejectsCorruptFrame(benchmark::State &state)
{
    // Pre-render one good frame, then flip a payload bit so the CRC
    // check — the last line of defense — is what rejects it.
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
        state.SkipWithError("socketpair failed");
        return;
    }
    const std::vector<uint8_t> payload = sampleResult().encode();
    if (!fleet::sendFrame(fds[0], fleet::MsgType::LeaseResult, payload)) {
        state.SkipWithError("sendFrame failed");
        return;
    }
    std::vector<uint8_t> wire(payload.size() + 16);
    ssize_t got = ::recv(fds[1], wire.data(), wire.size(), MSG_WAITALL);
    if (got != (ssize_t)wire.size()) {
        state.SkipWithError("frame capture failed");
        return;
    }
    wire[wire.size() / 2] ^= 0x40;
    for (auto _ : state) {
        ssize_t put = ::send(fds[0], wire.data(), wire.size(), 0);
        fleet::Frame frame;
        fleet::RecvStatus status = fleet::recvFrame(fds[1], &frame);
        if (put != (ssize_t)wire.size() ||
            status != fleet::RecvStatus::Malformed) {
            state.SkipWithError("corrupt frame not rejected");
            break;
        }
    }
    ::close(fds[0]);
    ::close(fds[1]);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecvRejectsCorruptFrame);

}  // namespace

BENCHMARK_MAIN();
