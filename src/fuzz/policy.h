/**
 * @file
 * The decision-policy seam: one layer owning every per-round choice of
 * the fuzz loop.
 *
 * The loop makes three interleaved decisions each round — which corpus
 * entry to mutate (scheduling), which mutation operator to apply, and
 * whether argument localization should use the learned model or the
 * random fallback (§3.4's fixed probability). Historically those lived
 * in three places (fuzz::Scheduler, the mutator's type selector, and a
 * hardcoded probability in core::SnowplowOptions) with no feedback from
 * outcomes to choices. A DecisionPolicy sees all three through one
 * seam:
 *
 *  - `decide()` observes a DecisionContext (corpus, virtual time,
 *    whether the worker's localizer is learned) and emits a
 *    Decision{seed, seed_bucket, use_pmm};
 *  - `pickOperator()` chooses the operator class for each structural
 *    mutant (the legacy loop re-rolls the selector per mutant, so the
 *    operator axis is sampled lazily rather than stored in Decision);
 *  - after triage/admit the engine feeds back a Reward{new_edges,
 *    new_blocks, crash} stamped with the virtual-time slot, attributed
 *    to an arm of (seed-bucket × operator-class × localizer-channel).
 *
 * Reward bookkeeping uses the CovShard single-writer pattern: each
 * worker owns a shard of relaxed-atomic (pulls, wins) cells it alone
 * writes; the serialized checkpoint owner merges every shard into the
 * global posterior before publishing the checkpoint, so posterior
 * updates land on the deterministic virtual-time grid (and a 1-worker
 * campaign's posterior evolution is bit-for-bit reproducible).
 *
 * StaticPolicy ports the historical behavior exactly — the configured
 * Scheduler (recency default, choose_test hook, directed distance) does
 * the pick, the operator comes from Mutator::selectType, and use_pmm is
 * one `rng.chance(pmm_fallback_prob)` draw in the legacy stream
 * position — so the default policy reproduces the pre-policy timeline
 * bit-for-bit. ThompsonPolicy replaces all three with Beta-Bernoulli
 * Thompson sampling over the merged posterior.
 */
#ifndef SP_FUZZ_POLICY_H
#define SP_FUZZ_POLICY_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/sched.h"
#include "mutate/mutator.h"

namespace sp::fuzz {

class DecisionPolicy;

/** Which decision policy drives the loop. */
enum class PolicyKind : uint8_t {
    Static,    ///< legacy behavior behind the seam (default)
    Thompson,  ///< Beta-Bernoulli bandit over (bucket × op × channel)
};

/** Policy configuration (FuzzOptions::policy). */
struct PolicyOptions
{
    PolicyKind kind = PolicyKind::Static;
    /**
     * Probability of deferring argument localization to the random
     * fallback when the localizer is learned (§3.4). Moved here from
     * core::SnowplowOptions: the arbitration is a loop decision, not a
     * localizer property. StaticPolicy draws it per round; Thompson
     * arbitrates from the posterior instead.
     */
    double pmm_fallback_prob = 0.05;
    /** Seed-age buckets (the scheduling arm axis). */
    size_t seed_buckets = 4;
    /** Beta prior (alpha = wins + prior_alpha, etc.). */
    double prior_alpha = 1.0;
    double prior_beta = 1.0;
    /** Custom policy instance; overrides `kind` when set. */
    std::shared_ptr<DecisionPolicy> custom;
};

/** Operator classes the policy chooses among (mut::MutationType as a
 *  dense reward-arm axis). */
constexpr size_t kOpClasses = 3;
constexpr size_t
opClassIndex(mut::MutationType type)
{
    return static_cast<size_t>(type);
}

/** What a policy observes before deciding a round. */
struct DecisionContext
{
    const Corpus *corpus = nullptr;
    const mut::Mutator *mutator = nullptr;
    /** The worker's localizer is model-backed: the policy arbitrates
     *  model-vs-random (and must not draw for plain localizers). */
    bool learned_localizer = false;
    size_t worker = 0;
    /** Virtual-time slots claimed so far (bucketing clock). */
    uint64_t now_slot = 0;
};

/** One round's scheduling + arbitration decision. */
struct Decision
{
    /** Entry to mutate (stable reference, corpus-owned). */
    const CorpusEntry *seed = nullptr;
    /** Seed-age bucket of `seed` (reward-arm axis). */
    size_t seed_bucket = 0;
    /** Localize with the learned model (false when not learned). */
    bool use_pmm = false;
};

/** Outcome of one executed mutant, fed back after triage/admit. */
struct Reward
{
    size_t new_edges = 0;
    size_t new_blocks = 0;
    bool crash = false;
    /** 1-based virtual-time execution number of the mutant. */
    uint64_t slot = 0;
};

/**
 * The decision seam. Decision methods are called from concurrent
 * workers (each passes its own RNG; the corpus is thread-safe);
 * recordReward is single-writer per worker; onCheckpoint and
 * exportMetrics must only run from serialized contexts (the in-order
 * checkpoint owner, or after workers joined).
 */
class DecisionPolicy
{
  public:
    explicit DecisionPolicy(PolicyOptions opts);
    virtual ~DecisionPolicy() = default;

    virtual const char *name() const = 0;

    /** Pick the round's base entry and the localization channel. */
    virtual Decision decide(const DecisionContext &ctx, Rng &rng) = 0;

    /** Choose the operator class for one structural mutant of `prog`
     *  (called per mutant, like the legacy selector). */
    virtual mut::MutationType pickOperator(const DecisionContext &ctx,
                                           const Decision &decision,
                                           Rng &rng,
                                           const prog::Prog &prog) = 0;

    /**
     * Size the per-worker reward shards. Called once before workers
     * start; idempotent for the same worker count (repeated
     * Fuzzer::runUntil calls keep their posterior).
     */
    void beginCampaign(size_t workers);

    /** Dense arm index for reward attribution. */
    int armFor(size_t bucket, mut::MutationType op,
               mut::LocalizerChannel channel) const;

    /** Record one executed mutant's outcome into `worker`'s shard
     *  (success = the mutant added edge coverage). Arm -1 = unattributed
     *  (seed-stage executions); ignored. */
    void recordReward(size_t worker, int arm, const Reward &reward);

    /**
     * Checkpoint hook: fold every worker shard into the global
     * posterior. Runs in the serialized checkpoint owner before the
     * checkpoint publish — the same single-writer merge discipline as
     * obs::CovShard — so the posterior the next rounds sample from is a
     * deterministic function of the virtual-time grid.
     */
    virtual void onCheckpoint(uint64_t slot);

    /** Final merge + `policy.*` gauge export (post-join only). */
    void exportMetrics();

    /** Compact posterior summary for the /status campaign section. */
    std::string statusJson() const;

    /** @name Posterior introspection (merged values) */
    /** @{ */
    size_t bucketCount() const { return opts_.seed_buckets; }
    size_t armCount() const
    {
        return opts_.seed_buckets * kOpClasses * mut::kLocalizerChannels;
    }
    uint64_t mergedPulls(int arm) const;
    uint64_t mergedWins(int arm) const;
    /** Model-channel share of argument-lane pulls. */
    double pmmShare() const;
    const PolicyOptions &options() const { return opts_; }
    /** @} */

    /** Seed-age bucket: the entry's admission time relative to the
     *  current virtual time, quantized to `seed_buckets`. */
    size_t bucketOf(const CorpusEntry &entry, uint64_t now_slot) const;

  protected:
    /** Merged posterior counts for one arm (sampling hot path). */
    void
    mergedArm(int arm, uint64_t *pulls, uint64_t *wins) const
    {
        *pulls = merged_pulls_[static_cast<size_t>(arm)].load(
            std::memory_order_relaxed);
        *wins = merged_wins_[static_cast<size_t>(arm)].load(
            std::memory_order_relaxed);
    }

    const PolicyOptions opts_;

  private:
    /** Fold every shard into merged_ (serialized contexts only). */
    void mergeShards();

    /** One worker's single-writer reward cells. */
    struct Shard
    {
        std::unique_ptr<std::atomic<uint64_t>[]> pulls;
        std::unique_ptr<std::atomic<uint64_t>[]> wins;
    };

    std::vector<Shard> shards_;
    /** Global posterior: sum over shards at the last merge. Written by
     *  the serialized merger, read lock-free by deciding workers. */
    std::unique_ptr<std::atomic<uint64_t>[]> merged_pulls_;
    std::unique_ptr<std::atomic<uint64_t>[]> merged_wins_;
};

/**
 * The historical behavior behind the seam: scheduler-driven pick
 * (recency default / choose_test hook / directed distance — the old
 * Scheduler implementations become adapters here), selector-weight
 * operator choice, and the fixed §3.4 fallback probability. With the
 * legacy RNG draw order preserved exactly, a 1-worker StaticPolicy
 * campaign reproduces the pre-policy timeline bit-for-bit.
 */
class StaticPolicy : public DecisionPolicy
{
  public:
    StaticPolicy(std::shared_ptr<Scheduler> scheduler,
                 PolicyOptions opts);

    const char *name() const override { return "static"; }

    Decision decide(const DecisionContext &ctx, Rng &rng) override;

    mut::MutationType pickOperator(const DecisionContext &ctx,
                                   const Decision &decision, Rng &rng,
                                   const prog::Prog &prog) override;

  private:
    std::shared_ptr<Scheduler> scheduler_;
};

/**
 * Beta-Bernoulli Thompson sampling over (seed-bucket × operator-class
 * × localizer-channel) arms; success = the mutant added edge coverage.
 * Seed pick samples the bucket marginals and draws uniformly inside
 * the winning bucket's index range (shard-major index position as the
 * admission-age proxy); use_pmm compares posterior samples of the
 * Model vs Random channel of the chosen bucket's argument arms (the
 * per-seed online PMM-vs-random arbitration — ForcedRandom outcomes
 * sit in their own channel and bias neither side); the operator comes
 * from posterior samples over the feasible operator classes.
 */
class ThompsonPolicy : public DecisionPolicy
{
  public:
    explicit ThompsonPolicy(PolicyOptions opts);

    const char *name() const override { return "thompson"; }

    Decision decide(const DecisionContext &ctx, Rng &rng) override;

    mut::MutationType pickOperator(const DecisionContext &ctx,
                                   const Decision &decision, Rng &rng,
                                   const prog::Prog &prog) override;

  private:
    /** Posterior sample for the merged (pulls, wins) of `arm`. */
    double sampleArm(int arm, Rng &rng) const;
    /** Posterior sample for a bucket's scheduling marginal. */
    double sampleBucket(size_t bucket, Rng &rng) const;
};

struct FuzzOptions;

/**
 * Build the effective policy for `opts`: `opts.policy.custom` if set,
 * else a StaticPolicy over the configured scheduler or a
 * ThompsonPolicy, per `opts.policy.kind`.
 */
std::shared_ptr<DecisionPolicy> makePolicy(const FuzzOptions &opts);

}  // namespace sp::fuzz

#endif  // SP_FUZZ_POLICY_H
