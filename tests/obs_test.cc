// Unit tests for src/obs: counter/gauge/histogram semantics, concurrent
// increments, snapshotJson round-trip, the SP_TIMED span macro, and the
// JSONL telemetry sink's event format.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"

namespace sp::obs {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, MomentsAndPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.stat.count(), 100u);
    EXPECT_DOUBLE_EQ(snap.stat.mean(), 50.5);
    EXPECT_DOUBLE_EQ(snap.stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(snap.stat.max(), 100.0);
    EXPECT_DOUBLE_EQ(snap.samples.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(snap.samples.percentile(99), 99.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, ReservoirKeepsCountExactPastCap)
{
    Histogram h;
    const size_t n = Histogram::kShardSampleCap + 500;
    for (size_t i = 0; i < n; ++i)
        h.record(1.0);
    // All records land on the calling thread's shard; the retained
    // sample set is capped but the running moments stay exact.
    EXPECT_EQ(h.count(), n);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.stat.count(), n);
    EXPECT_LE(snap.samples.count(), Histogram::kShardSampleCap);
    EXPECT_DOUBLE_EQ(snap.samples.percentile(50), 1.0);
}

TEST(Registry, FindOrCreateReturnsStableHandles)
{
    Registry reg;
    Counter &a = reg.counter("x.count");
    Counter &b = reg.counter("x.count");
    EXPECT_EQ(&a, &b);
    a.inc(7);
    EXPECT_EQ(b.value(), 7u);
    Gauge &g = reg.gauge("x.gauge");
    g.set(2.0);
    EXPECT_EQ(reg.gauge("x.gauge").value(), 2.0);
    reg.histogram("x.hist").record(1.0);
    EXPECT_EQ(reg.histogram("x.hist").count(), 1u);
}

TEST(Registry, ConcurrentIncrementsFromFourThreads)
{
    Registry reg;
    Counter &counter = reg.counter("threads.count");
    Histogram &hist = reg.histogram("threads.hist");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.inc();
                hist.record(static_cast<double>(t));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads * kPerThread));
    const auto snap = hist.snapshot();
    EXPECT_EQ(snap.stat.count(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(snap.stat.min(), 0.0);
    EXPECT_DOUBLE_EQ(snap.stat.max(), kThreads - 1.0);
}

TEST(Registry, SnapshotJsonRoundTrip)
{
    Registry reg;
    reg.counter("fuzz.execs").inc(5000);
    reg.gauge("infer.queue_depth").set(3.0);
    for (int i = 1; i <= 4; ++i)
        reg.histogram("exec.run_us").record(static_cast<double>(i));

    const std::string json = reg.snapshotJson();
    // Structural sanity: balanced braces, one top-level object.
    int depth = 0, min_depth = 1;
    for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '{')
            ++depth;
        if (json[i] == '}')
            --depth;
        if (i > 0 && i + 1 < json.size())
            min_depth = std::min(min_depth, depth);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_GE(min_depth, 1);

    // Every registered metric surfaces with its value.
    EXPECT_NE(json.find("\"fuzz.execs\":5000"), std::string::npos);
    EXPECT_NE(json.find("\"infer.queue_depth\":3"), std::string::npos);
    EXPECT_NE(json.find("\"exec.run_us\":{\"count\":4"),
              std::string::npos);
    EXPECT_NE(json.find("\"p95\":"), std::string::npos);
    EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
}

TEST(Registry, ResetZeroesEverything)
{
    Registry reg;
    reg.counter("a").inc(3);
    reg.gauge("b").set(4.0);
    reg.histogram("c").record(5.0);
    reg.reset();
    EXPECT_EQ(reg.counter("a").value(), 0u);
    EXPECT_EQ(reg.gauge("b").value(), 0.0);
    EXPECT_EQ(reg.histogram("c").count(), 0u);
}

TEST(ScopedTimer, RecordsOnlyWhenTimingEnabled)
{
    Histogram h;
    setTimingEnabled(false);
    {
        ScopedTimer span(h);
    }
    EXPECT_EQ(h.count(), 0u);
    setTimingEnabled(true);
    {
        ScopedTimer span(h);
    }
    setTimingEnabled(false);
    ASSERT_EQ(h.count(), 1u);
    EXPECT_GE(h.snapshot().stat.min(), 0.0);
}

TEST(ScopedTimer, SpTimedMacroFeedsGlobalRegistry)
{
    Histogram &hist =
        Registry::global().histogram("obs_test.sp_timed_us");
    hist.reset();
    setTimingEnabled(true);
    {
        SP_TIMED("obs_test.sp_timed_us");
    }
    setTimingEnabled(false);
    EXPECT_EQ(hist.count(), 1u);
}

TEST(Field, EscapesStringsAndFormatsScalars)
{
    std::string out;
    Field("k\"ey", "va\\l\nue").appendTo(out);
    EXPECT_EQ(out, "\"k\\\"ey\":\"va\\\\l\\nue\"");

    out.clear();
    Field("n", uint64_t{18446744073709551615ull}).appendTo(out);
    EXPECT_EQ(out, "\"n\":18446744073709551615");

    out.clear();
    Field("b", true).appendTo(out);
    EXPECT_EQ(out, "\"b\":true");

    out.clear();
    Field("i", -3).appendTo(out);
    EXPECT_EQ(out, "\"i\":-3");
}

TEST(TelemetrySink, WritesOneJsonObjectPerLine)
{
    const std::string path = "/tmp/sp_obs_test_events.jsonl";
    {
        TelemetrySink sink({.path = path, .flush_every = 1});
        sink.event("alpha", {{"x", 1}, {"name", "first"}});
        sink.event("beta", {{"ok", true}, {"rate", 0.5}});
        EXPECT_EQ(sink.eventsWritten(), 2u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].find("{\"ev\":\"alpha\",\"t_us\":"), 0u);
    EXPECT_NE(lines[0].find("\"x\":1"), std::string::npos);
    EXPECT_NE(lines[0].find("\"name\":\"first\""), std::string::npos);
    EXPECT_EQ(lines[0].back(), '}');
    EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(lines[1].find("\"rate\":0.5"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetrySink, InstallShutdownAppendsRegistrySnapshot)
{
    const std::string path = "/tmp/sp_obs_test_snapshot.jsonl";
    installSink({.path = path});
    ASSERT_NE(sink(), nullptr);
    EXPECT_TRUE(timingEnabled());
    sink()->event("ping", {{"n", 1}});
    shutdownSink();
    setTimingEnabled(false);
    EXPECT_EQ(sink(), nullptr);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"ev\":\"ping\""), std::string::npos);
    EXPECT_EQ(lines[1].find("{\"ev\":\"registry_snapshot\""), 0u);
    EXPECT_NE(lines[1].find("\"registry\":{\"counters\":{"),
              std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace sp::obs
