#include "data/format.h"

#include <array>

#include "util/logging.h"

namespace sp::data {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

}  // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// --- PayloadReader ----------------------------------------------------

const void *
PayloadReader::take(size_t len)
{
    SP_ASSERT(pos_ + len <= len_,
              "shard payload under-run (%zu of %zu bytes)", pos_ + len,
              len_);
    const void *at = data_ + pos_;
    pos_ += len;
    return at;
}

uint8_t
PayloadReader::u8()
{
    return *static_cast<const uint8_t *>(take(1));
}

uint16_t
PayloadReader::u16()
{
    uint16_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

uint32_t
PayloadReader::u32()
{
    uint32_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

uint64_t
PayloadReader::u64()
{
    uint64_t v;
    std::memcpy(&v, take(sizeof(v)), sizeof(v));
    return v;
}

std::string
PayloadReader::str()
{
    const uint32_t len = u32();
    const void *at = take(len);
    return std::string(static_cast<const char *>(at), len);
}

// --- FrameWriter ------------------------------------------------------

FrameWriter::FrameWriter(const std::string &path,
                         uint64_t kernel_fingerprint)
    : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    SP_ASSERT(file_ != nullptr, "cannot create shard %s", path.c_str());
    PayloadWriter header;
    header.u64(kShardMagic);
    header.u32(kShardVersion);
    header.u32(kShardEndianGuard);
    header.u64(kernel_fingerprint);
    const auto &bytes = header.bytes();
    SP_ASSERT(std::fwrite(bytes.data(), 1, bytes.size(), file_) ==
                  bytes.size(),
              "short write to shard %s", path.c_str());
    bytes_ = bytes.size();
}

FrameWriter::~FrameWriter()
{
    close();
}

size_t
FrameWriter::append(uint32_t kind, const PayloadWriter &payload)
{
    SP_ASSERT(file_ != nullptr, "append to a closed shard %s",
              path_.c_str());
    const auto &body = payload.bytes();
    SP_ASSERT(body.size() <= kMaxRecordPayload,
              "shard record payload too large (%zu bytes)", body.size());
    const auto len = static_cast<uint32_t>(body.size());

    // CRC over kind | len | payload, so a frame whose length field was
    // torn is rejected as a unit.
    uint32_t crc = crc32(&kind, sizeof(kind));
    crc = crc32(&len, sizeof(len), crc);
    crc = crc32(body.data(), body.size(), crc);

    bool ok = std::fwrite(&kind, sizeof(kind), 1, file_) == 1;
    ok = ok && std::fwrite(&len, sizeof(len), 1, file_) == 1;
    ok = ok &&
         std::fwrite(body.data(), 1, body.size(), file_) == body.size();
    ok = ok && std::fwrite(&crc, sizeof(crc), 1, file_) == 1;
    SP_ASSERT(ok, "short write to shard %s", path_.c_str());

    const size_t frame = sizeof(kind) + sizeof(len) + body.size() +
                         sizeof(crc);
    bytes_ += frame;
    return frame;
}

void
FrameWriter::close()
{
    if (file_ == nullptr)
        return;
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
}

// --- FrameReader ------------------------------------------------------

FrameReader::FrameReader(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    SP_ASSERT(file_ != nullptr, "cannot open shard %s", path.c_str());

    uint64_t magic = 0;
    uint32_t version = 0, endian = 0;
    const bool header_ok =
        std::fread(&magic, sizeof(magic), 1, file_) == 1 &&
        std::fread(&version, sizeof(version), 1, file_) == 1 &&
        std::fread(&endian, sizeof(endian), 1, file_) == 1 &&
        std::fread(&fingerprint_, sizeof(fingerprint_), 1, file_) == 1;
    SP_ASSERT(header_ok, "%s: not an example-store shard (short header)",
              path.c_str());
    SP_ASSERT(magic == kShardMagic,
              "%s: not an example-store shard (bad magic)",
              path.c_str());
    SP_ASSERT(version == kShardVersion,
              "%s: shard format version %u, this build reads %u — "
              "re-collect the dataset with this build",
              path.c_str(), version, kShardVersion);
    SP_ASSERT(endian == kShardEndianGuard,
              "%s: shard was written on a machine with different "
              "endianness",
              path.c_str());
}

FrameReader::~FrameReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
FrameReader::next(uint32_t &kind, PayloadReader &payload)
{
    if (done_)
        return false;

    uint32_t len = 0, stored_crc = 0;
    const size_t got_kind = std::fread(&kind, sizeof(kind), 1, file_);
    if (got_kind == 0) {
        done_ = true;  // clean EOF between frames
        return false;
    }
    if (std::fread(&len, sizeof(len), 1, file_) != 1 ||
        len > kMaxRecordPayload) {
        done_ = truncated_ = true;
        return false;
    }
    buffer_.resize(len);
    if (std::fread(buffer_.data(), 1, len, file_) != len ||
        std::fread(&stored_crc, sizeof(stored_crc), 1, file_) != 1) {
        done_ = truncated_ = true;
        return false;
    }
    uint32_t crc = crc32(&kind, sizeof(kind));
    crc = crc32(&len, sizeof(len), crc);
    crc = crc32(buffer_.data(), buffer_.size(), crc);
    if (crc != stored_crc) {
        done_ = truncated_ = true;
        return false;
    }
    payload = PayloadReader(buffer_.data(), buffer_.size());
    return true;
}

}  // namespace sp::data
