/**
 * @file
 * Text serialization of programs in a Syzlang-like syntax.
 *
 * Example:
 *     r0 = open$file(&{0x2f, "66696c65"}, 0x42, 0x1ff)
 *     read(r0, &"0000", 0x4)
 *
 * Scalars print as hex; resources as rN (producing call index) or nil;
 * pointers as &<pointee> or nil; structs as {field, ...}; buffers as
 * quoted hex strings. The parser is a strict recursive descent over the
 * declared types — it needs the SyscallTable to know each argument's
 * shape — and reports errors with line/column context.
 */
#ifndef SP_PROG_SERIALIZE_H
#define SP_PROG_SERIALIZE_H

#include <optional>
#include <string>

#include "prog/value.h"

namespace sp::prog {

/** Render a single call (without trailing newline). */
std::string formatCall(const Call &call, size_t call_index);

/** Render a whole program, one call per line. */
std::string formatProg(const Prog &prog);

/** Parse result carrying either a program or an error description. */
struct ParseResult
{
    std::optional<Prog> prog;
    std::string error;  ///< empty on success

    bool ok() const { return prog.has_value(); }
};

/** Parse a program rendered by formatProg. */
ParseResult parseProg(const std::string &text, const SyscallTable &table);

}  // namespace sp::prog

#endif  // SP_PROG_SERIALIZE_H
