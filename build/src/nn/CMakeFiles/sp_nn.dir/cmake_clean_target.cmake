file(REMOVE_RECURSE
  "libsp_nn.a"
)
