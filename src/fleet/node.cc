#include "fleet/node.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/snowplow.h"
#include "data/harvest.h"
#include "data/store.h"
#include "kernel/subsystems.h"
#include "nn/serialize.h"
#include "obs/covmap.h"
#include "obs/netio.h"
#include "prog/serialize.h"
#include "util/logging.h"

namespace sp::fleet {

namespace {

/** Read a whole file; empty on failure (the shard just isn't pushed). */
std::vector<uint8_t>
slurpFile(const std::string &path)
{
    std::vector<uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return bytes;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size > 0) {
        bytes.resize(static_cast<size_t>(size));
        std::fseek(f, 0, SEEK_SET);
        if (std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size())
            bytes.clear();
    }
    std::fclose(f);
    return bytes;
}

/** One lease's local campaign -> the LeaseResult push. */
LeaseResultMsg
runLease(const kern::Kernel &kernel, const HelloAckMsg &cfg,
         const LeaseGrantMsg &grant, const NodeOptions &opts,
         const core::Pmm *model)
{
    fuzz::CampaignOptions copts;
    copts.workers = std::max<size_t>(1, opts.workers);
    copts.fuzz.exec_budget = grant.count;
    copts.fuzz.seed = grant.node_seed;
    // One grid boundary per lease: the fleet timeline is sampled on the
    // coordinator's watermark grid, not inside leases.
    copts.fuzz.checkpoint_every = grant.count;
    copts.fuzz.policy.kind = cfg.thompson != 0
                                 ? fuzz::PolicyKind::Thompson
                                 : fuzz::PolicyKind::Static;
    // A seeded lease still generates a few of its own programs (the
    // exploration floor); an unseeded one bootstraps a full corpus.
    copts.fuzz.seed_corpus_size =
        grant.batch.empty() ? cfg.seed_corpus_size : cfg.lease_gen_seeds;
    for (const std::string &text : grant.batch) {
        auto parsed = prog::parseProg(text, kernel.table());
        if (parsed.ok())
            copts.fuzz.injected_seeds.push_back(std::move(*parsed.prog));
    }

    std::unique_ptr<obs::CovMap> covmap;
    if (cfg.covmap != 0) {
        covmap = std::make_unique<obs::CovMap>(
            obs::CovMapPlan::build(kernel.blocks().size(),
                                   kernel.staticEdges()),
            copts.workers);
        copts.fuzz.covmap = covmap.get();
    }

    std::unique_ptr<data::Harvester> harvester;
    if (cfg.harvest != 0) {
        data::HarvestOptions hopts;
        hopts.dir = opts.scratch_dir + "/fleet-" + opts.name;
        char shard[48];
        std::snprintf(shard, sizeof(shard), "lease-%llu.spds",
                      static_cast<unsigned long long>(grant.lease_id));
        hopts.shard_name = shard;
        hopts.seed = grant.node_seed;
        ::mkdir(opts.scratch_dir.c_str(), 0755);
        harvester = std::make_unique<data::Harvester>(kernel, hopts);
        copts.on_mutation = harvester->hook();
    }

    std::unique_ptr<fuzz::CampaignEngine> engine =
        model != nullptr
            ? core::makeSnowplowCampaign(kernel, *model, copts)
            : core::makeSyzkallerCampaign(kernel, copts);
    const fuzz::FuzzReport report = engine->run();

    LeaseResultMsg result;
    result.lease_id = grant.lease_id;
    result.execs = report.execs;

    for (size_t i = 0; i < engine->corpus().size(); ++i) {
        const fuzz::CorpusEntry &entry = engine->corpus().entry(i);
        WireProgram program;
        program.text = prog::formatProg(entry.program);
        const auto &coverage = entry.result.coverage;
        program.blocks.assign(coverage.blocks().begin(),
                              coverage.blocks().end());
        program.edges.assign(coverage.edges().begin(),
                             coverage.edges().end());
        std::sort(program.blocks.begin(), program.blocks.end());
        std::sort(program.edges.begin(), program.edges.end());
        result.programs.push_back(std::move(program));
    }

    for (const fuzz::CrashRecord &record : engine->crashes().records()) {
        WireCrash crash;
        crash.bug_index = record.bug_index;
        // Map the local exec counter onto the lease's global slot range
        // (clamped: seed-stage executions can overrun a short lease).
        crash.slot = grant.begin +
                     std::min(record.first_seen_exec, grant.count);
        crash.trigger = prog::formatProg(record.trigger);
        result.crashes.push_back(std::move(crash));
    }

    if (covmap != nullptr) {
        covmap->finalize(report.execs);
        result.have_cov = true;
        const std::vector<uint64_t> blocks = covmap->mergedBlockHits();
        for (uint32_t i = 0; i < blocks.size(); ++i) {
            if (blocks[i] != 0)
                result.block_deltas.emplace_back(i, blocks[i]);
        }
        const std::vector<uint64_t> edges = covmap->mergedEdgeHits();
        for (uint32_t i = 0; i < edges.size(); ++i) {
            if (edges[i] != 0)
                result.edge_deltas.emplace_back(i, edges[i]);
        }
        result.stray_edges = covmap->summary().stray_edges;
    }

    if (const fuzz::DecisionPolicy *policy = engine->policy()) {
        result.have_policy = true;
        result.policy_name = policy->name();
        result.pmm_share = policy->pmmShare();
        for (size_t arm = 0; arm < policy->armCount(); ++arm) {
            const uint64_t pulls =
                policy->mergedPulls(static_cast<int>(arm));
            if (pulls == 0)
                continue;
            WireArm entry;
            entry.arm = static_cast<uint32_t>(arm);
            entry.pulls = pulls;
            entry.wins = policy->mergedWins(static_cast<int>(arm));
            result.arms.push_back(entry);
        }
    }

    if (harvester != nullptr) {
        harvester->close();
        if (harvester->stats().examples > 0) {
            result.shard = slurpFile(harvester->shardPath());
            result.have_shard = !result.shard.empty();
        }
    }

    return result;
}

}  // namespace

NodeStats
runNode(const NodeOptions &opts)
{
    NodeStats stats;

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts.connect_timeout_ms);
    int fd = -1;
    for (;;) {
        fd = obs::connectTcp(opts.host, opts.port);
        if (fd >= 0)
            break;
        if (std::chrono::steady_clock::now() >= deadline) {
            stats.error = "connect timeout";
            return stats;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.retry_ms));
    }

    const auto fail = [&](const char *what) {
        stats.error = what;
        ::close(fd);
        return stats;
    };

    HelloMsg hello;
    hello.node_name = opts.name;
    if (!sendFrame(fd, MsgType::Hello, hello.encode()))
        return fail("hello send failed");

    Frame frame;
    if (recvFrame(fd, &frame) != RecvStatus::Ok)
        return fail("handshake recv failed");
    if (frame.type == MsgType::Error) {
        ErrorMsg msg;
        msg.decode(frame.payload);
        stats.error = msg.message.empty() ? "rejected" : msg.message;
        ::close(fd);
        return stats;
    }
    HelloAckMsg cfg;
    if (frame.type != MsgType::HelloAck || !cfg.decode(frame.payload))
        return fail("bad handshake ack");

    // Rebuild the coordinator's kernel and prove it is the same one:
    // a node fuzzing a different kernel would push meaningless block
    // ids and crash indices into the merge.
    kern::KernelGenParams params;
    params.seed = cfg.kernel_seed;
    params.version = cfg.kernel_version;
    params.evolution = static_cast<int>(cfg.kernel_evolution);
    const kern::Kernel kernel = kern::buildBaseKernel(params);
    if (data::kernelFingerprint(kernel) != cfg.kernel_fingerprint) {
        sendFrame(fd, MsgType::Bye, {});
        return fail("kernel fingerprint mismatch");
    }

    core::Pmm model;
    const bool have_model =
        !opts.pmm_path.empty() && nn::loadParameters(model, opts.pmm_path);

    for (;;) {
        if (!sendFrame(fd, MsgType::LeaseRequest, {}))
            return fail("lease request send failed");
        if (recvFrame(fd, &frame) != RecvStatus::Ok)
            return fail("lease grant recv failed");
        if (frame.type == MsgType::Error) {
            ErrorMsg msg;
            msg.decode(frame.payload);
            stats.error = msg.message;
            ::close(fd);
            return stats;
        }
        LeaseGrantMsg grant;
        if (frame.type != MsgType::LeaseGrant ||
            !grant.decode(frame.payload))
            return fail("bad lease grant");

        if (grant.done != 0) {
            stats.done = true;
            sendFrame(fd, MsgType::Bye, {});
            break;
        }
        if (grant.count == 0) {
            // Budget fully leased out but not yet proven complete; an
            // outstanding lease may still bounce back to the pool.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.retry_ms));
            continue;
        }

        if (opts.abandon_first) {
            // Fault injection: vanish mid-lease. No Bye, no result —
            // the coordinator's disconnect reclaim must re-issue it.
            ::close(fd);
            return stats;
        }

        const LeaseResultMsg result = runLease(
            kernel, cfg, grant, opts, have_model ? &model : nullptr);
        stats.execs += result.execs;
        stats.programs_sent += result.programs.size();
        stats.crashes_sent += result.crashes.size();

        if (!sendFrame(fd, MsgType::LeaseResult, result.encode()))
            return fail("lease result send failed");
        if (recvFrame(fd, &frame) != RecvStatus::Ok ||
            frame.type != MsgType::ResultAck)
            return fail("result ack recv failed");
        ResultAckMsg ack;
        if (!ack.decode(frame.payload))
            return fail("bad result ack");
        ++stats.leases;
        if (ack.accepted != 0)
            ++stats.accepted;
        else
            ++stats.stale;

        if (opts.max_leases != 0 && stats.leases >= opts.max_leases) {
            sendFrame(fd, MsgType::Bye, {});
            break;
        }
    }

    ::close(fd);
    return stats;
}

}  // namespace sp::fleet
