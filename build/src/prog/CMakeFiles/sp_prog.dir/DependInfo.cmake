
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prog/flatten.cc" "src/prog/CMakeFiles/sp_prog.dir/flatten.cc.o" "gcc" "src/prog/CMakeFiles/sp_prog.dir/flatten.cc.o.d"
  "/root/repo/src/prog/gen.cc" "src/prog/CMakeFiles/sp_prog.dir/gen.cc.o" "gcc" "src/prog/CMakeFiles/sp_prog.dir/gen.cc.o.d"
  "/root/repo/src/prog/serialize.cc" "src/prog/CMakeFiles/sp_prog.dir/serialize.cc.o" "gcc" "src/prog/CMakeFiles/sp_prog.dir/serialize.cc.o.d"
  "/root/repo/src/prog/types.cc" "src/prog/CMakeFiles/sp_prog.dir/types.cc.o" "gcc" "src/prog/CMakeFiles/sp_prog.dir/types.cc.o.d"
  "/root/repo/src/prog/validate.cc" "src/prog/CMakeFiles/sp_prog.dir/validate.cc.o" "gcc" "src/prog/CMakeFiles/sp_prog.dir/validate.cc.o.d"
  "/root/repo/src/prog/value.cc" "src/prog/CMakeFiles/sp_prog.dir/value.cc.o" "gcc" "src/prog/CMakeFiles/sp_prog.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
