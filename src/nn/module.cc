#include "nn/module.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace sp::nn {

void
Module::zeroGrad()
{
    for (auto &p : params_)
        p.tensor.zeroGrad();
}

int64_t
Module::parameterCount() const
{
    int64_t total = 0;
    for (const auto &p : params_)
        total += p.tensor.numel();
    return total;
}

Tensor
Module::registerParameter(std::string name, Tensor tensor)
{
    SP_ASSERT(tensor.requiresGrad(),
              "parameters must require grad: %s", name.c_str());
    params_.push_back(Parameter{std::move(name), tensor});
    return params_.back().tensor;
}

void
Module::absorb(const std::string &prefix, const Module &child)
{
    for (const auto &p : child.parameters()) {
        std::string full =
            prefix.empty() ? p.name : prefix + "." + p.name;
        params_.push_back(Parameter{std::move(full), p.tensor});
    }
}

Linear::Linear(Rng &rng, int64_t in, int64_t out, const std::string &name)
    : in_(in), out_(out)
{
    SP_ASSERT(in > 0 && out > 0);
    const float std_dev = std::sqrt(2.0f / static_cast<float>(in));
    weight_ = registerParameter(
        name + ".weight", Tensor::randn(rng, in, out, std_dev));
    bias_ = registerParameter(
        name + ".bias",
        Tensor::zerosVec(out, /*requires_grad=*/true));
}

Tensor
Linear::forward(const Tensor &x) const
{
    SP_ASSERT(x.isMatrix() && x.cols() == in_,
              "Linear expects [n, %lld], got [%lld, %lld]",
              static_cast<long long>(in_),
              static_cast<long long>(x.rows()),
              static_cast<long long>(x.cols()));
    return affine(x, weight_, bias_);
}

Embedding::Embedding(Rng &rng, int64_t vocab, int64_t dim,
                     const std::string &name)
    : vocab_(vocab), dim_(dim)
{
    SP_ASSERT(vocab > 0 && dim > 0);
    const float std_dev = 1.0f / std::sqrt(static_cast<float>(dim));
    table_ = registerParameter(
        name + ".table", Tensor::randn(rng, vocab, dim, std_dev));
}

Tensor
Embedding::forward(const std::vector<int32_t> &ids) const
{
    return gatherRows(table_, ids);
}

Mlp::Mlp(Rng &rng, const std::vector<int64_t> &dims, const std::string &name)
{
    SP_ASSERT(dims.size() >= 2, "Mlp needs at least input and output dims");
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        layers_.emplace_back(rng, dims[i], dims[i + 1],
                             name + ".l" + std::to_string(i));
    }
    for (size_t i = 0; i < layers_.size(); ++i)
        absorb("", layers_[i]);
}

Tensor
Mlp::forward(const Tensor &x) const
{
    Tensor h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i].forward(h);
        if (i + 1 < layers_.size())
            h = relu(h);
    }
    return h;
}

}  // namespace sp::nn
