// Tests for the src/data subsystem: the framed shard format and its
// crash-truncation semantics, the sharded example store (round-trip,
// dedup, merge/compaction with the popularity cap and the
// split-by-base invariant), the streaming loader's bit-identical
// training parity with the in-memory source, resumable training, and
// the campaign harvester.

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/dataset.h"
#include "core/snowplow.h"
#include "core/train.h"
#include "data/format.h"
#include "data/harvest.h"
#include "data/loader.h"
#include "data/shard.h"
#include "data/store.h"
#include "fuzz/campaign.h"
#include "kernel/subsystems.h"
#include "prog/serialize.h"
#include "util/logging.h"

namespace sp::data {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 10;
        params.num_syscalls = 10;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

const core::Dataset &
smallDataset()
{
    static core::Dataset dataset = [] {
        core::DatasetOptions opts;
        opts.corpus_size = 50;
        opts.mutations_per_base = 50;
        opts.seed = 3;
        return core::collectDataset(testKernel(), opts);
    }();
    return dataset;
}

/** Fresh scratch directory under the system tmpdir. */
std::string
scratchDir()
{
    char tmpl[] = "/tmp/sp_data_test_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    SP_ASSERT(dir != nullptr, "mkdtemp failed");
    return dir;
}

std::vector<uint8_t>
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    SP_ASSERT(in.good(), "cannot open %s", path.c_str());
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
expectSameExamples(const std::vector<core::RawExample> &a,
                   const std::vector<core::RawExample> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].base_index, b[i].base_index) << i;
        EXPECT_EQ(a[i].targets, b[i].targets) << i;
        ASSERT_EQ(a[i].mutate_sites.size(), b[i].mutate_sites.size());
        for (size_t j = 0; j < a[i].mutate_sites.size(); ++j) {
            EXPECT_EQ(a[i].mutate_sites[j].call_index,
                      b[i].mutate_sites[j].call_index);
            EXPECT_EQ(a[i].mutate_sites[j].point.path,
                      b[i].mutate_sites[j].point.path);
        }
    }
}

TEST(Format, CrcMatchesKnownVectors)
{
    // IEEE CRC-32 of "123456789" is the classic check value.
    const char *check = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const uint8_t *>(check), 9),
              0xcbf43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Format, PayloadRoundTrip)
{
    PayloadWriter out;
    out.u8(7);
    out.u16(513);
    out.u32(0xdeadbeef);
    out.u64(0x0123456789abcdefull);
    out.str("snowplow");
    PayloadReader in(out.bytes().data(), out.bytes().size());
    EXPECT_EQ(in.u8(), 7u);
    EXPECT_EQ(in.u16(), 513u);
    EXPECT_EQ(in.u32(), 0xdeadbeefu);
    EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(in.str(), "snowplow");
    EXPECT_EQ(in.remaining(), 0u);
}

TEST(Shard, WriteReadRoundTrip)
{
    const std::string dir = scratchDir();
    const std::string path = dir + "/round.spds";

    BaseRecord base;
    base.base_hash = 0x1122334455667788ull;
    base.text = "open(0x1)\nread(r0, 0x2)\n";
    base.blocks = {1, 5, 9};
    base.edges = 4;
    ExampleRecord example;
    example.base_hash = base.base_hash;
    example.split = kSplitValid;
    example.targets = {2, 3, 11};
    mut::ArgLocation site;
    site.call_index = 1;
    site.point.path = {0, 2};
    example.sites.push_back(site);

    {
        ShardWriter writer(path, 0xabcdull);
        EXPECT_GT(writer.append(base), 0u);
        EXPECT_GT(writer.append(example), 0u);
        writer.close();
        EXPECT_EQ(writer.index().bases, 1u);
        EXPECT_EQ(writer.index().valid, 1u);
    }

    ShardReader reader(path);
    EXPECT_EQ(reader.kernelFingerprint(), 0xabcdull);
    BaseRecord got_base;
    ExampleRecord got_example;
    bool is_base = false;
    ASSERT_TRUE(reader.next(got_base, got_example, is_base));
    ASSERT_TRUE(is_base);
    EXPECT_EQ(got_base.base_hash, base.base_hash);
    EXPECT_EQ(got_base.text, base.text);
    EXPECT_EQ(got_base.blocks, base.blocks);
    EXPECT_EQ(got_base.edges, base.edges);
    ASSERT_TRUE(reader.next(got_base, got_example, is_base));
    ASSERT_FALSE(is_base);
    EXPECT_EQ(got_example.base_hash, example.base_hash);
    EXPECT_EQ(got_example.split, kSplitValid);
    EXPECT_EQ(got_example.targets, example.targets);
    ASSERT_EQ(got_example.sites.size(), 1u);
    EXPECT_EQ(got_example.sites[0].call_index, 1u);
    EXPECT_EQ(got_example.sites[0].point.path,
              (std::vector<uint16_t>{0, 2}));
    EXPECT_FALSE(reader.next(got_base, got_example, is_base));
    EXPECT_FALSE(reader.truncated());

    // The sidecar index agrees with the scan.
    auto index = readShardIndex(path);
    ASSERT_TRUE(index.has_value());
    EXPECT_EQ(index->bases, 1u);
    EXPECT_EQ(index->examples(), 1u);
}

TEST(Shard, TruncatedShardReadsToLastValidRecord)
{
    const std::string dir = scratchDir();
    const std::string path = dir + "/torn.spds";
    std::vector<size_t> frame_sizes;
    size_t header_bytes = 0;

    {
        ShardWriter writer(path, 0x1ull);
        header_bytes = writer.bytesWritten();
        for (uint64_t i = 0; i < 8; ++i) {
            BaseRecord base;
            base.base_hash = i + 1;
            base.text = "text-" + std::to_string(i);
            base.blocks = {static_cast<uint32_t>(i)};
            base.edges = i;
            frame_sizes.push_back(writer.append(base));
            ExampleRecord example;
            example.base_hash = i + 1;
            example.targets = {static_cast<uint32_t>(i + 100)};
            mut::ArgLocation site;
            site.point.path = {0};
            example.sites.push_back(site);
            frame_sizes.push_back(writer.append(example));
        }
        writer.close();
    }

    // Cut the file mid-way through the final record, as a crash would.
    const auto bytes = fileBytes(path);
    const size_t torn = bytes.size() - frame_sizes.back() / 2;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(torn));
    }
    ASSERT_GT(torn, header_bytes);

    ShardReader reader(path);
    BaseRecord base;
    ExampleRecord example;
    bool is_base = false;
    size_t records = 0;
    while (reader.next(base, example, is_base))
        ++records;
    EXPECT_EQ(records, frame_sizes.size() - 1);
    EXPECT_TRUE(reader.truncated());

    // A corrupted (bit-flipped) record also stops the scan cleanly.
    auto flipped = bytes;
    flipped[bytes.size() - frame_sizes.back() + 9] ^= 0x40;
    const std::string flip_path = dir + "/flip.spds";
    {
        std::ofstream out(flip_path, std::ios::binary);
        out.write(reinterpret_cast<const char *>(flipped.data()),
                  static_cast<std::streamsize>(flipped.size()));
    }
    ShardReader flip_reader(flip_path);
    records = 0;
    while (flip_reader.next(base, example, is_base))
        ++records;
    EXPECT_EQ(records, frame_sizes.size() - 1);
    EXPECT_TRUE(flip_reader.truncated());
}

TEST(Dataset, CanonicalizeDedupesAndSortsTargets)
{
    auto site = [](size_t call, std::vector<uint16_t> path) {
        mut::ArgLocation loc;
        loc.call_index = call;
        loc.point.path = std::move(path);
        return loc;
    };
    core::RawExample example;
    example.targets = {9, 3, 9, 1, 3};
    example.mutate_sites.push_back(site(2, {1}));
    example.mutate_sites.push_back(site(0, {0, 1}));
    example.mutate_sites.push_back(site(2, {1}));
    example.canonicalize();
    EXPECT_EQ(example.targets, (std::vector<uint32_t>{1, 3, 9}));
    ASSERT_EQ(example.mutate_sites.size(), 2u);
    EXPECT_EQ(example.mutate_sites[0].call_index, 0u);
    EXPECT_EQ(example.mutate_sites[1].call_index, 2u);

    // exampleKey is insensitive to construction order.
    core::RawExample other;
    other.targets = {1, 9, 3, 1};
    other.mutate_sites.push_back(site(0, {0, 1}));
    other.mutate_sites.push_back(site(2, {1}));
    other.canonicalize();
    EXPECT_EQ(core::exampleKey(example, 42), core::exampleKey(other, 42));
    EXPECT_NE(core::exampleKey(example, 42), core::exampleKey(other, 43));
}

TEST(Store, SingleShardRoundTripPreservesDataset)
{
    const auto &dataset = smallDataset();
    const std::string dir = scratchDir();
    const auto paths = writeStore(dataset, dir, 1);
    ASSERT_EQ(paths.size(), 1u);

    bool truncated = true;
    const auto loaded = loadStore(testKernel(), paths, &truncated);
    EXPECT_FALSE(truncated);
    ASSERT_EQ(loaded.bases.size(), dataset.bases.size());
    for (size_t i = 0; i < dataset.bases.size(); ++i)
        EXPECT_EQ(prog::formatProg(loaded.bases[i]),
                  prog::formatProg(dataset.bases[i]))
            << i;
    // Deterministic re-execution restored the base coverage.
    ASSERT_EQ(loaded.base_results.size(), dataset.base_results.size());
    for (size_t i = 0; i < dataset.base_results.size(); ++i)
        EXPECT_EQ(loaded.base_results[i].coverage.edgeCount(),
                  dataset.base_results[i].coverage.edgeCount())
            << i;
    expectSameExamples(loaded.train, dataset.train);
    expectSameExamples(loaded.valid, dataset.valid);
    expectSameExamples(loaded.eval, dataset.eval);
}

TEST(Store, MultiShardLoadCoversAllAndDedupesBases)
{
    const auto &dataset = smallDataset();
    const std::string dir = scratchDir();
    const auto paths = writeStore(dataset, dir, 3);
    ASSERT_EQ(paths.size(), 3u);

    // Listing a shard twice must not duplicate bases or examples.
    auto doubled = paths;
    doubled.push_back(paths[0]);
    const auto loaded = loadStore(testKernel(), doubled);
    EXPECT_EQ(loaded.bases.size(), dataset.bases.size());
    EXPECT_EQ(loaded.train.size(), dataset.train.size());
    EXPECT_EQ(loaded.valid.size(), dataset.valid.size());
    EXPECT_EQ(loaded.eval.size(), dataset.eval.size());

    const auto stats = statStore(paths);
    EXPECT_EQ(stats.shards, 3u);
    EXPECT_EQ(stats.indexed_shards, 3u);
    EXPECT_EQ(stats.truncated_shards, 0u);
    EXPECT_EQ(stats.totals.bases, dataset.bases.size());
    EXPECT_EQ(stats.totals.examples(), dataset.train.size() +
                                           dataset.valid.size() +
                                           dataset.eval.size());
}

TEST(Store, LoadRejectsWrongKernel)
{
    const auto &dataset = smallDataset();
    const std::string dir = scratchDir();
    const auto paths = writeStore(dataset, dir, 1);

    kern::KernelGenParams params;
    params.seed = 99;
    params.num_syscalls = 12;
    const auto other = kern::buildBaseKernel(params);
    EXPECT_NE(kernelFingerprint(other), kernelFingerprint(testKernel()));
    EXPECT_DEATH(loadStore(other, paths), "fingerprint");
}

TEST(Store, SplitOfBaseIsDeterministicAndProportional)
{
    Rng rng(5);
    size_t train = 0, valid = 0, eval = 0;
    for (int i = 0; i < 4000; ++i) {
        const uint64_t hash = rng.next();
        const uint8_t split = splitOfBase(hash, 7, 0.8);
        EXPECT_EQ(split, splitOfBase(hash, 7, 0.8));
        train += split == kSplitTrain;
        valid += split == kSplitValid;
        eval += split == kSplitEval;
    }
    EXPECT_GT(train, 2900u);
    EXPECT_LT(train, 3500u);
    EXPECT_GT(valid, 200u);
    EXPECT_GT(eval, 200u);
    // Different seeds roll different splits.
    size_t moved = 0;
    Rng rng2(5);
    for (int i = 0; i < 4000; ++i) {
        const uint64_t hash = rng2.next();
        moved += splitOfBase(hash, 7, 0.8) != splitOfBase(hash, 8, 0.8);
    }
    EXPECT_GT(moved, 500u);
}

TEST(Store, MergeDedupesAppliesCapAndKeepsSplitByBase)
{
    const auto &dataset = smallDataset();
    const std::string dir = scratchDir();
    const auto paths = writeStore(dataset, dir, 3);

    MergeOptions merge_opts;
    merge_opts.seed = 11;
    merge_opts.popularity_cap = 5;
    // Overlapping inputs: every shard once, plus one twice.
    auto inputs = paths;
    inputs.push_back(paths[1]);
    const auto merged_path = dir + "/merged.spds";
    const auto index = mergeStore(inputs, merged_path, merge_opts);
    EXPECT_GT(index.examples(), 0u);

    // Re-read the merged shard and check both §3.1 invariants.
    ShardReader reader(merged_path);
    BaseRecord base;
    ExampleRecord example;
    bool is_base = false;
    std::unordered_set<uint64_t> base_hashes;
    std::unordered_map<uint64_t, uint8_t> split_of;
    std::unordered_map<uint32_t, size_t> popularity;
    std::unordered_set<uint64_t> keys;
    uint64_t examples = 0;
    while (reader.next(base, example, is_base)) {
        if (is_base) {
            // Dedup: each base appears exactly once.
            EXPECT_TRUE(base_hashes.insert(base.base_hash).second);
            continue;
        }
        ++examples;
        // Base-before-example ordering within the shard.
        EXPECT_TRUE(base_hashes.count(example.base_hash));
        // Split-by-base: every example of a base shares its split,
        // and the split is the pure content-hash roll.
        auto [it, fresh] =
            split_of.emplace(example.base_hash, example.split);
        EXPECT_EQ(it->second, example.split);
        if (fresh) {
            EXPECT_EQ(example.split,
                      splitOfBase(example.base_hash, merge_opts.seed,
                                  merge_opts.train_fraction));
        }
        // Popularity cap over the merged output.
        for (uint32_t t : example.targets) {
            ++popularity[t];
            EXPECT_LE(popularity[t], merge_opts.popularity_cap) << t;
        }
        core::RawExample raw;
        raw.targets = example.targets;
        raw.mutate_sites = example.sites;
        raw.canonicalize();
        EXPECT_TRUE(
            keys.insert(core::exampleKey(raw, example.base_hash)).second);
    }
    EXPECT_FALSE(reader.truncated());
    EXPECT_EQ(examples, index.examples());
    EXPECT_EQ(base_hashes.size(), index.bases);

    // Merging the same inputs again is byte-identical, and
    // re-merging the merged shard keeps every record (idempotent
    // compaction: dedup and the cap find nothing more to drop).
    const auto again_path = dir + "/merged2.spds";
    mergeStore(inputs, again_path, merge_opts);
    EXPECT_EQ(fileBytes(merged_path), fileBytes(again_path));
    const auto recompact_path = dir + "/merged3.spds";
    const auto re_index =
        mergeStore({merged_path}, recompact_path, merge_opts);
    EXPECT_EQ(re_index.bases, index.bases);
    EXPECT_EQ(re_index.train, index.train);
    EXPECT_EQ(re_index.valid, index.valid);
    EXPECT_EQ(re_index.eval, index.eval);
}

TEST(Store, MergedStoreLoadsAndTrainsEndToEnd)
{
    const auto &dataset = smallDataset();
    const std::string dir = scratchDir();
    const auto paths = writeStore(dataset, dir, 2);
    const auto merged_path = dir + "/merged.spds";
    mergeStore(paths, merged_path);
    const auto loaded = loadStore(testKernel(), {merged_path});
    EXPECT_GT(loaded.train.size(), 0u);
    EXPECT_GT(loaded.bases.size(), 0u);
    for (const auto &example : loaded.train)
        ASSERT_LT(example.base_index, loaded.bases.size());
}

void
expectSameMetrics(const core::SelectorMetrics &a,
                  const core::SelectorMetrics &b)
{
    EXPECT_EQ(a.f1, b.f1);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.recall, b.recall);
    EXPECT_EQ(a.jaccard, b.jaccard);
    EXPECT_EQ(a.examples, b.examples);
}

core::TrainOptions
smallTrainOptions()
{
    core::TrainOptions opts;
    opts.epochs = 3;
    opts.seed = 21;
    opts.max_train_examples = 48;
    return opts;
}

core::PmmConfig
smallPmmConfig()
{
    core::PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 2;
    config.head_hidden = 16;
    return config;
}

TEST(Loader, StreamingTrainingIsBitIdenticalToInMemory)
{
    const auto &dataset = smallDataset();
    const auto opts = smallTrainOptions();
    const auto config = smallPmmConfig();

    core::Pmm in_memory_model(config);
    const auto in_memory = trainPmm(in_memory_model, dataset, opts);

    LoaderOptions loader_opts;
    loader_opts.prefetch_threads = 3;
    loader_opts.window = 7;  // deliberately small: force stalls/reuse
    core::Pmm streamed_model(config);
    StreamSource source(dataset, loader_opts);
    const auto streamed =
        trainPmmFromSource(streamed_model, dataset, source, opts);

    ASSERT_EQ(streamed.epochs.size(), in_memory.epochs.size());
    for (size_t i = 0; i < in_memory.epochs.size(); ++i) {
        EXPECT_EQ(streamed.epochs[i].train_loss,
                  in_memory.epochs[i].train_loss)
            << i;
        expectSameMetrics(streamed.epochs[i].valid,
                          in_memory.epochs[i].valid);
    }
    expectSameMetrics(streamed.best_valid, in_memory.best_valid);
    EXPECT_EQ(streamed.best_threshold, in_memory.best_threshold);
    const auto eval_a = evaluatePmm(in_memory_model, dataset,
                                    dataset.eval,
                                    in_memory.best_threshold);
    const auto eval_b = evaluatePmm(streamed_model, dataset,
                                    dataset.eval,
                                    streamed.best_threshold);
    expectSameMetrics(eval_a, eval_b);
}

TEST(Loader, StreamingFromDiskShardsMatchesInMemory)
{
    // Full pipeline: dataset → shards → load, then stream-train
    // against in-memory training on the same loaded store. (Sharding
    // regroups examples by base range, so the loaded example order is
    // a permutation of the original dataset's — parity is defined
    // over the store both sources actually read.)
    const auto &dataset = smallDataset();
    const std::string dir = scratchDir();
    const auto paths = writeStore(dataset, dir, 2);
    const auto loaded = loadStore(testKernel(), paths);

    const auto opts = smallTrainOptions();
    const auto config = smallPmmConfig();
    core::Pmm in_memory_model(config);
    const auto in_memory = trainPmm(in_memory_model, loaded, opts);

    core::Pmm streamed_model(config);
    StreamSource source(loaded);
    const auto streamed =
        trainPmmFromSource(streamed_model, loaded, source, opts);
    ASSERT_EQ(streamed.epochs.size(), in_memory.epochs.size());
    for (size_t i = 0; i < in_memory.epochs.size(); ++i)
        EXPECT_EQ(streamed.epochs[i].train_loss,
                  in_memory.epochs[i].train_loss)
            << i;
    expectSameMetrics(streamed.best_valid, in_memory.best_valid);
}

TEST(Train, ResumeMatchesUninterruptedRun)
{
    const auto &dataset = smallDataset();
    const auto config = smallPmmConfig();
    const std::string dir = scratchDir();

    auto opts = smallTrainOptions();
    opts.epochs = 4;
    core::Pmm straight_model(config);
    const auto straight = trainPmm(straight_model, dataset, opts);

    // Interrupt after 2 epochs, then resume to the same horizon.
    auto first_half = opts;
    first_half.epochs = 2;
    first_half.checkpoint_path = dir + "/train.ckpt";
    core::Pmm resumed_model(config);
    trainPmm(resumed_model, dataset, first_half);

    auto second_half = opts;
    second_half.checkpoint_path = first_half.checkpoint_path;
    second_half.resume = true;
    core::Pmm final_model(config);  // checkpoint restores parameters
    const auto resumed = trainPmm(final_model, dataset, second_half);

    ASSERT_EQ(resumed.epochs.size(), straight.epochs.size());
    for (size_t i = 0; i < straight.epochs.size(); ++i) {
        EXPECT_EQ(resumed.epochs[i].epoch, straight.epochs[i].epoch);
        EXPECT_EQ(resumed.epochs[i].train_loss,
                  straight.epochs[i].train_loss)
            << i;
        expectSameMetrics(resumed.epochs[i].valid,
                          straight.epochs[i].valid);
    }
    expectSameMetrics(resumed.best_valid, straight.best_valid);
    EXPECT_EQ(resumed.best_threshold, straight.best_threshold);
    const auto eval_straight =
        evaluatePmm(straight_model, dataset, dataset.eval,
                    straight.best_threshold);
    const auto eval_resumed =
        evaluatePmm(final_model, dataset, dataset.eval,
                    resumed.best_threshold);
    expectSameMetrics(eval_straight, eval_resumed);
}

TEST(Train, ResumeWithoutCheckpointTrainsFromScratch)
{
    const auto &dataset = smallDataset();
    const auto config = smallPmmConfig();
    const std::string dir = scratchDir();

    auto opts = smallTrainOptions();
    opts.checkpoint_path = dir + "/absent.ckpt";
    opts.resume = true;  // warns, then trains from scratch
    core::Pmm model(config);
    const auto history = trainPmm(model, dataset, opts);
    EXPECT_EQ(history.epochs.size(), 3u);

    auto plain = smallTrainOptions();
    core::Pmm plain_model(config);
    const auto baseline = trainPmm(plain_model, dataset, plain);
    for (size_t i = 0; i < baseline.epochs.size(); ++i)
        EXPECT_EQ(history.epochs[i].train_loss,
                  baseline.epochs[i].train_loss);
}

TEST(Harvest, CampaignHarvestIsLoadableAndMergeable)
{
    const auto &kernel = testKernel();
    const std::string dir = scratchDir();

    HarvestOptions harvest_opts;
    harvest_opts.dir = dir;
    harvest_opts.seed = 9;
    Harvester harvester(kernel, harvest_opts);

    fuzz::CampaignOptions campaign_opts;
    campaign_opts.workers = 4;
    campaign_opts.fuzz.exec_budget = 4000;
    campaign_opts.fuzz.seed = 12;
    campaign_opts.fuzz.seed_corpus_size = 20;
    campaign_opts.fuzz.checkpoint_every = 500;
    campaign_opts.on_mutation = harvester.hook();
    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    engine->run();
    harvester.close();

    const auto stats = harvester.stats();
    EXPECT_GT(stats.offered, 0u);
    EXPECT_GT(stats.examples, 0u);
    EXPECT_GT(stats.bases, 0u);
    EXPECT_GT(stats.bytes, 0u);

    // The harvest shard loads back against the same kernel...
    const auto loaded =
        loadStore(kernel, {harvester.shardPath()});
    EXPECT_EQ(loaded.bases.size(), stats.bases);
    EXPECT_EQ(loaded.train.size() + loaded.valid.size() +
                  loaded.eval.size(),
              stats.examples);
    for (const auto &example : loaded.train) {
        EXPECT_FALSE(example.targets.empty());
        EXPECT_FALSE(example.mutate_sites.empty());
    }

    // ...and merges cleanly with a collected store (same kernel).
    const auto collected_paths = writeStore(smallDataset(), dir, 1);
    const auto merged_path = dir + "/combined.spds";
    const auto index = mergeStore(
        {collected_paths[0], harvester.shardPath()}, merged_path);
    EXPECT_GE(index.bases, stats.bases);
    const auto combined = loadStore(kernel, {merged_path});
    EXPECT_EQ(combined.bases.size(), index.bases);
}

TEST(Harvest, CloseIsIdempotentAndDropsNeverBlock)
{
    const auto &kernel = testKernel();
    const std::string dir = scratchDir();
    HarvestOptions harvest_opts;
    harvest_opts.dir = dir;
    harvest_opts.queue_capacity = 1;  // force the drop path
    Harvester harvester(kernel, harvest_opts);

    fuzz::CampaignOptions campaign_opts;
    campaign_opts.workers = 2;
    campaign_opts.fuzz.exec_budget = 1500;
    campaign_opts.fuzz.seed = 4;
    campaign_opts.fuzz.seed_corpus_size = 10;
    campaign_opts.on_mutation = harvester.hook();
    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    engine->run();
    harvester.close();
    harvester.close();
    const auto stats = harvester.stats();
    EXPECT_EQ(stats.offered, stats.dropped + stats.examples +
                                 stats.discarded);
}

}  // namespace
}  // namespace sp::data
