#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

#include "obs/telemetry.h"
#include "util/logging.h"

namespace sp::obs {

namespace {

std::atomic<bool> g_timing_enabled{false};

/** JSON number literal; non-finite values (empty-metric min/max) -> 0. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

bool
timingEnabled()
{
    return g_timing_enabled.load(std::memory_order_relaxed);
}

void
setTimingEnabled(bool enabled)
{
    g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Shard &
Histogram::shardForThisThread()
{
    static thread_local const size_t slot =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[slot % kShards];
}

void
Histogram::record(double x)
{
    Shard &shard = shardForThisThread();
    std::lock_guard<std::mutex> guard(shard.mu);
    shard.stat.add(x);
    if (shard.samples.count() < kShardSampleCap) {
        shard.samples.add(x);
        return;
    }
    // Reservoir sampling keeps the retained set uniform over the whole
    // stream once the cap is hit (Vitter's algorithm R, LCG-driven).
    shard.lcg = shard.lcg * 6364136223846793005ULL +
                1442695040888963407ULL;
    const uint64_t j = shard.lcg % shard.stat.count();
    if (j < kShardSampleCap)
        shard.samples.replace(static_cast<size_t>(j), x);
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mu);
        total += shard.stat.count();
    }
    return total;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot merged;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mu);
        merged.stat.merge(shard.stat);
        merged.samples.merge(shard.samples);
    }
    return merged;
}

RunningStat
Histogram::stat() const
{
    RunningStat merged;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mu);
        merged.merge(shard.stat);
    }
    return merged;
}

void
Histogram::reset()
{
    for (Shard &shard : shards_) {
        std::lock_guard<std::mutex> guard(shard.mu);
        shard.stat.clear();
        shard.samples.clear();
    }
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> guard(mu_);
    SP_ASSERT(gauges_.count(name) == 0 && histograms_.count(name) == 0,
              "metric name registered with a different kind");
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> guard(mu_);
    SP_ASSERT(counters_.count(name) == 0 && histograms_.count(name) == 0,
              "metric name registered with a different kind");
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> guard(mu_);
    SP_ASSERT(counters_.count(name) == 0 && gauges_.count(name) == 0,
              "metric name registered with a different kind");
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(name, std::make_unique<Histogram>())
                 .first;
    }
    return *it->second;
}

std::string
Registry::snapshotJson() const
{
    std::lock_guard<std::mutex> guard(mu_);
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : counters_) {
        out << (first ? "" : ",") << jsonQuote(name) << ":"
            << counter->value();
        first = false;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto &[name, gauge] : gauges_) {
        out << (first ? "" : ",") << jsonQuote(name) << ":"
            << jsonNumber(gauge->value());
        first = false;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, histogram] : histograms_) {
        const HistogramSnapshot snap = histogram->snapshot();
        out << (first ? "" : ",") << jsonQuote(name) << ":{"
            << "\"count\":" << snap.stat.count()
            << ",\"mean\":" << jsonNumber(snap.stat.mean())
            << ",\"min\":" << jsonNumber(snap.stat.min())
            << ",\"max\":" << jsonNumber(snap.stat.max())
            << ",\"stddev\":" << jsonNumber(snap.stat.stddev())
            << ",\"p50\":" << jsonNumber(snap.samples.percentile(50))
            << ",\"p90\":" << jsonNumber(snap.samples.percentile(90))
            << ",\"p95\":" << jsonNumber(snap.samples.percentile(95))
            << ",\"p99\":" << jsonNumber(snap.samples.percentile(99))
            << "}";
        first = false;
    }
    out << "}}";
    return out.str();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> guard(mu_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, histogram] : histograms_)
        histogram->reset();
}

void
Registry::visit(
    const std::function<void(const std::string &, const Counter &)>
        &on_counter,
    const std::function<void(const std::string &, const Gauge &)>
        &on_gauge,
    const std::function<void(const std::string &, const Histogram &)>
        &on_histogram) const
{
    std::lock_guard<std::mutex> guard(mu_);
    if (on_counter) {
        for (const auto &[name, counter] : counters_)
            on_counter(name, *counter);
    }
    if (on_gauge) {
        for (const auto &[name, gauge] : gauges_)
            on_gauge(name, *gauge);
    }
    if (on_histogram) {
        for (const auto &[name, histogram] : histograms_)
            on_histogram(name, *histogram);
    }
}

size_t
Registry::unregisterGaugesWithPrefix(const std::string &prefix)
{
    std::lock_guard<std::mutex> guard(mu_);
    size_t removed = 0;
    for (auto it = gauges_.lower_bound(prefix);
         it != gauges_.end() && it->first.compare(0, prefix.size(),
                                                  prefix) == 0;) {
        it = gauges_.erase(it);
        ++removed;
    }
    return removed;
}

size_t
Registry::resetGaugesWithPrefix(const std::string &prefix)
{
    std::lock_guard<std::mutex> guard(mu_);
    size_t reset = 0;
    for (auto it = gauges_.lower_bound(prefix);
         it != gauges_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
        it->second->reset();
        ++reset;
    }
    return reset;
}

size_t
Registry::resetCountersWithPrefix(const std::string &prefix)
{
    std::lock_guard<std::mutex> guard(mu_);
    size_t reset = 0;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
        it->second->reset();
        ++reset;
    }
    return reset;
}

size_t
Registry::resetDistributionsWithPrefix(const std::string &prefix)
{
    std::lock_guard<std::mutex> guard(mu_);
    size_t reset = 0;
    for (auto it = histograms_.lower_bound(prefix);
         it != histograms_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
        it->second->reset();
        ++reset;
    }
    return reset;
}

std::string
workerMetric(const std::string &base, size_t worker)
{
    return base + ".w" + std::to_string(worker);
}

}  // namespace sp::obs
