#include "core/train.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/inference.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/timer.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Accumulates per-example set-overlap metrics. */
class MetricAccumulator
{
  public:
    void
    add(const std::vector<bool> &predicted,
        const std::vector<bool> &truth)
    {
        SP_ASSERT(predicted.size() == truth.size());
        size_t tp = 0, fp = 0, fn = 0;
        for (size_t i = 0; i < predicted.size(); ++i) {
            tp += (predicted[i] && truth[i]);
            fp += (predicted[i] && !truth[i]);
            fn += (!predicted[i] && truth[i]);
        }
        const double precision =
            tp + fp == 0 ? 0.0
                         : static_cast<double>(tp) /
                               static_cast<double>(tp + fp);
        const double recall =
            tp + fn == 0 ? 1.0
                         : static_cast<double>(tp) /
                               static_cast<double>(tp + fn);
        const double f1 = precision + recall == 0.0
                              ? 0.0
                              : 2.0 * precision * recall /
                                    (precision + recall);
        const double jaccard =
            tp + fp + fn == 0 ? 1.0
                              : static_cast<double>(tp) /
                                    static_cast<double>(tp + fp + fn);
        precision_ += precision;
        recall_ += recall;
        f1_ += f1;
        jaccard_ += jaccard;
        ++count_;
    }

    SelectorMetrics
    finish() const
    {
        SelectorMetrics metrics;
        metrics.examples = count_;
        if (count_ == 0)
            return metrics;
        const auto n = static_cast<double>(count_);
        metrics.precision = precision_ / n;
        metrics.recall = recall_ / n;
        metrics.f1 = f1_ / n;
        metrics.jaccard = jaccard_ / n;
        return metrics;
    }

  private:
    double precision_ = 0.0;
    double recall_ = 0.0;
    double f1_ = 0.0;
    double jaccard_ = 0.0;
    size_t count_ = 0;
};

std::vector<bool>
truthMask(const std::vector<float> &labels)
{
    std::vector<bool> mask(labels.size());
    for (size_t i = 0; i < labels.size(); ++i)
        mask[i] = labels[i] > 0.5f;
    return mask;
}

// --- Trainer-state blob (the nn/serialize trainer section) ------------
//
// A flat little struct-of-scalars encoding; versioned so a stale
// checkpoint from a future layout fails loudly instead of misreading.

constexpr uint32_t kTrainerStateVersion = 1;

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    const size_t at = out.size();
    out.resize(at + sizeof(v));
    std::memcpy(out.data() + at, &v, sizeof(v));
}

void
putF64(std::vector<uint8_t> &out, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putMetrics(std::vector<uint8_t> &out, const SelectorMetrics &m)
{
    putF64(out, m.f1);
    putF64(out, m.precision);
    putF64(out, m.recall);
    putF64(out, m.jaccard);
    putU64(out, m.examples);
}

class BlobReader
{
  public:
    explicit BlobReader(const std::vector<uint8_t> &blob) : blob_(blob)
    {
    }

    uint64_t
    u64()
    {
        SP_ASSERT(pos_ + sizeof(uint64_t) <= blob_.size(),
                  "trainer state truncated");
        uint64_t v;
        std::memcpy(&v, blob_.data() + pos_, sizeof(v));
        pos_ += sizeof(v);
        return v;
    }

    double
    f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    SelectorMetrics
    metrics()
    {
        SelectorMetrics m;
        m.f1 = f64();
        m.precision = f64();
        m.recall = f64();
        m.jaccard = f64();
        m.examples = static_cast<size_t>(u64());
        return m;
    }

  private:
    const std::vector<uint8_t> &blob_;
    size_t pos_ = 0;
};

std::vector<uint8_t>
encodeTrainerState(const TrainOptions &opts, size_t per_epoch,
                   size_t kept, const Rng &rng,
                   const std::vector<size_t> &order,
                   const TrainHistory &history, int next_epoch,
                   double best_f1, int stale_epochs)
{
    std::vector<uint8_t> blob;
    putU64(blob, kTrainerStateVersion);
    putU64(blob, opts.seed);
    putU64(blob, per_epoch);
    putU64(blob, kept);
    putU64(blob, static_cast<uint64_t>(next_epoch));
    putF64(blob, best_f1);
    putU64(blob, static_cast<uint64_t>(stale_epochs));
    putMetrics(blob, history.best_valid);
    for (uint64_t lane : rng.state())
        putU64(blob, lane);
    // Epoch shuffles permute `order` in place, so the permutation is
    // cumulative trainer state, not derivable from the RNG alone.
    for (size_t position : order)
        putU64(blob, position);
    putU64(blob, history.epochs.size());
    for (const auto &record : history.epochs) {
        putU64(blob, static_cast<uint64_t>(record.epoch));
        putF64(blob, record.train_loss);
        putMetrics(blob, record.valid);
    }
    return blob;
}

/** Decode + validate; fatal on a checkpoint from different data/opts. */
void
decodeTrainerState(const std::vector<uint8_t> &blob,
                   const TrainOptions &opts, size_t per_epoch,
                   size_t kept, Rng &rng, std::vector<size_t> &order,
                   TrainHistory &history, int &next_epoch,
                   double &best_f1, int &stale_epochs)
{
    BlobReader in(blob);
    const uint64_t version = in.u64();
    SP_ASSERT(version == kTrainerStateVersion,
              "trainer state version %llu, expected %u",
              static_cast<unsigned long long>(version),
              kTrainerStateVersion);
    const uint64_t seed = in.u64();
    const uint64_t ckpt_per_epoch = in.u64();
    const uint64_t ckpt_kept = in.u64();
    SP_ASSERT(seed == opts.seed && ckpt_per_epoch == per_epoch &&
                  ckpt_kept == kept,
              "resume checkpoint was trained with different data or "
              "options (seed %llu/%llu, examples %llu/%zu, kept "
              "%llu/%zu)",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(opts.seed),
              static_cast<unsigned long long>(ckpt_per_epoch),
              per_epoch, static_cast<unsigned long long>(ckpt_kept),
              kept);
    next_epoch = static_cast<int>(in.u64());
    best_f1 = in.f64();
    stale_epochs = static_cast<int>(in.u64());
    history.best_valid = in.metrics();
    std::array<uint64_t, 4> state;
    for (auto &lane : state)
        lane = in.u64();
    rng.setState(state);
    order.resize(kept);
    for (auto &position : order)
        position = static_cast<size_t>(in.u64());
    const uint64_t epochs = in.u64();
    history.epochs.clear();
    for (uint64_t i = 0; i < epochs; ++i) {
        EpochRecord record;
        record.epoch = static_cast<int>(in.u64());
        record.train_loss = in.f64();
        record.valid = in.metrics();
        history.epochs.push_back(record);
    }
}

}  // namespace

size_t
InMemorySource::prepare(Rng &rng, size_t per_epoch)
{
    // Materialize (graph, labels) once: the encodings are identical
    // across epochs, and rebuilding them dominates training time.
    cache_.clear();
    cache_.reserve(per_epoch);
    std::vector<size_t> candidates(dataset_.train.size());
    for (size_t i = 0; i < candidates.size(); ++i)
        candidates[i] = i;
    for (size_t i = candidates.size(); i > 1; --i)
        std::swap(candidates[i - 1], candidates[rng.below(i)]);
    for (size_t i = 0; i < per_epoch; ++i) {
        auto example =
            materializeExample(dataset_, dataset_.train[candidates[i]]);
        if (example.second.empty())
            continue;
        cache_.push_back(std::move(example));
    }
    return cache_.size();
}

void
InMemorySource::beginEpoch(const std::vector<size_t> &order)
{
    order_ = &order;
    pos_ = 0;
}

std::pair<const graph::EncodedGraph *, const std::vector<float> *>
InMemorySource::next()
{
    SP_ASSERT(order_ != nullptr && pos_ < order_->size());
    const auto &item = cache_[(*order_)[pos_++]];
    return {&item.first, &item.second};
}

TrainHistory
trainPmm(Pmm &model, const Dataset &dataset, const TrainOptions &opts)
{
    InMemorySource source(dataset);
    return trainPmmFromSource(model, dataset, source, opts);
}

TrainHistory
trainPmmFromSource(Pmm &model, const Dataset &dataset,
                   ExampleSource &source, const TrainOptions &opts)
{
    TrainHistory history;
    if (dataset.train.empty()) {
        SP_WARN("trainPmm: empty training split");
        return history;
    }

    Rng rng(opts.seed);
    nn::Adam optimizer(model.parameters(), opts.learning_rate, 0.9f,
                       0.999f, 1e-8f, opts.weight_decay);

    const size_t per_epoch =
        opts.max_train_examples == 0
            ? dataset.train.size()
            : std::min(dataset.train.size(), opts.max_train_examples);
    const size_t kept = source.prepare(rng, per_epoch);

    std::vector<size_t> order(kept);
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    int start_epoch = 0;
    double best_f1 = -1.0;
    int stale_epochs = 0;
    if (opts.resume) {
        SP_ASSERT(!opts.checkpoint_path.empty(),
                  "TrainOptions::resume requires checkpoint_path");
        nn::AdamState adam_state;
        std::vector<uint8_t> blob;
        if (nn::loadCheckpoint(model, opts.checkpoint_path, &adam_state,
                               &blob) &&
            !blob.empty()) {
            optimizer.restore(adam_state);
            decodeTrainerState(blob, opts, per_epoch, kept, rng, order,
                               history, start_epoch, best_f1,
                               stale_epochs);
            if (opts.verbose) {
                SP_INFORM("resuming from %s at epoch %d (best F1 "
                          "%.3f)",
                          opts.checkpoint_path.c_str(), start_epoch,
                          best_f1);
            }
        } else {
            SP_WARN("no resumable checkpoint at %s; training from "
                    "scratch",
                    opts.checkpoint_path.c_str());
        }
    }

    for (int epoch = start_epoch; epoch < opts.epochs; ++epoch) {
        SP_TIMED("train.epoch_us");
        // Shuffle example order.
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);

        double loss_total = 0.0;
        size_t trained = 0;
        source.beginEpoch(order);
        for (size_t oi = 0; oi < order.size(); ++oi) {
            const auto [graph, labels] = source.next();
            std::vector<float> weights(labels->size());
            for (size_t i = 0; i < labels->size(); ++i)
                weights[i] =
                    (*labels)[i] > 0.5f ? opts.pos_weight : 1.0f;

            model.zeroGrad();
            nn::Tensor logits = model.forward(*graph, &rng, true);
            nn::Tensor loss =
                nn::bceWithLogits(logits, *labels, weights);
            loss.backward();
            optimizer.clipGradNorm(opts.grad_clip);
            optimizer.step();
            loss_total += loss.item();
            ++trained;
        }

        EpochRecord record;
        record.epoch = epoch;
        record.train_loss =
            trained == 0 ? 0.0 : loss_total / static_cast<double>(trained);
        record.valid = evaluatePmm(model, dataset, dataset.valid);
        history.epochs.push_back(record);
        if (auto *sink = obs::sink()) {
            sink->event("train_epoch",
                        {{"epoch", epoch},
                         {"train_loss", record.train_loss},
                         {"valid_f1", record.valid.f1},
                         {"valid_precision", record.valid.precision},
                         {"valid_recall", record.valid.recall},
                         {"valid_jaccard", record.valid.jaccard},
                         {"examples", trained}});
        }
        if (opts.verbose) {
            SP_INFORM("epoch %d: loss %.4f valid F1 %.3f", epoch,
                      record.train_loss, record.valid.f1);
        }

        bool improved = false;
        if (record.valid.f1 > best_f1 + 1e-4) {
            best_f1 = record.valid.f1;
            history.best_valid = record.valid;
            stale_epochs = 0;
            improved = true;
        } else {
            ++stale_epochs;
        }
        if (!opts.checkpoint_path.empty()) {
            const nn::AdamState adam_state = optimizer.snapshot();
            const std::vector<uint8_t> blob = encodeTrainerState(
                opts, per_epoch, kept, rng, order, history, epoch + 1,
                best_f1, stale_epochs);
            nn::saveCheckpoint(model, opts.checkpoint_path,
                               &adam_state, &blob);
        }
        if (!improved && stale_epochs > opts.patience)
            break;
    }
    if (history.best_valid.examples == 0 && !history.epochs.empty())
        history.best_valid = history.epochs.back().valid;

    // Decision-threshold sweep on the validation split.
    double best_threshold_f1 = -1.0;
    for (float threshold : {0.3f, 0.35f, 0.4f, 0.45f, 0.5f, 0.55f,
                            0.6f}) {
        auto metrics =
            evaluatePmm(model, dataset, dataset.valid, threshold);
        if (metrics.f1 > best_threshold_f1) {
            best_threshold_f1 = metrics.f1;
            history.best_threshold = threshold;
        }
    }
    return history;
}

SelectorMetrics
evaluatePmm(const Pmm &model, const Dataset &dataset,
            const std::vector<RawExample> &split, float threshold)
{
    MetricAccumulator acc;
    // One encode buffer for the whole sweep; predict() runs in
    // inference mode, so the sweep is allocation-free at steady state.
    graph::EncodedGraph graph;
    std::vector<float> labels;
    for (const auto &example : split) {
        materializeExampleInto(dataset, example, graph, labels);
        if (labels.empty())
            continue;
        const auto probs = model.predict(graph);
        std::vector<bool> predicted(probs.size());
        bool any = false;
        for (size_t i = 0; i < probs.size(); ++i) {
            predicted[i] = probs[i] >= threshold;
            any |= predicted[i];
        }
        if (!any && !probs.empty()) {
            // Always select at least the top-scoring argument.
            size_t best = 0;
            for (size_t i = 1; i < probs.size(); ++i)
                if (probs[i] > probs[best])
                    best = i;
            predicted[best] = true;
        }
        acc.add(predicted, truthMask(labels));
    }
    obs::Registry::global()
        .gauge("infer.arena_hit_ratio")
        .set(nn::threadArenaStats().hitRatio());
    return acc.finish();
}

SelectorMetrics
evaluateRandomSelector(const Dataset &dataset,
                       const std::vector<RawExample> &split, size_t k,
                       uint64_t seed)
{
    Rng rng(seed);
    MetricAccumulator acc;
    for (const auto &example : split) {
        auto [graph, labels] = materializeExample(dataset, example);
        if (labels.empty())
            continue;
        std::vector<bool> predicted(labels.size(), false);
        const size_t take = std::min(k, labels.size());
        for (size_t i : rng.sampleIndices(labels.size(), take))
            predicted[i] = true;
        acc.add(predicted, truthMask(labels));
        (void)graph;
    }
    return acc.finish();
}

}  // namespace sp::core
