# Empty dependencies file for sp_nn.
# This may be replaced when dependencies are built.
