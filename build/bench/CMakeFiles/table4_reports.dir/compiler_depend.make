# Empty compiler generated dependencies file for table4_reports.
# This may be replaced when dependencies are built.
