#include <cstdio>
#include "bench/common.h"
int main() {
    using namespace sp;
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    std::printf("kernel: %zu blocks, %zu static edges, %zu bugs\n",
                kernel.blocks().size(), kernel.staticEdges().size(), kernel.bugs().size());
    int d[8] = {};
    for (auto& b : kernel.bugs()) if (!b.known) d[kernel.block(b.block).depth]++;
    std::printf("new bug depths: d2=%d d3=%d d4=%d d5+=%d\n", d[2], d[3], d[4], d[5]+d[6]);
    for (uint64_t seed : {101ull, 202ull}) {
        auto opts = spbench::evalFuzzOptions(42000, seed);
        auto fuzzer = core::makeSyzkallerFuzzer(kernel, opts);
        auto r = fuzzer->run();
        std::printf("syzkaller 42k seed %llu: edges=%zu/%zu new=%zu known=%zu\n",
            (unsigned long long)seed, r.final_edges, kernel.staticEdges().size(),
            fuzzer->crashes().newCrashes(), fuzzer->crashes().knownCrashes());
    }
    return 0;
}
