file(REMOVE_RECURSE
  "CMakeFiles/sp_core.dir/dataset.cc.o"
  "CMakeFiles/sp_core.dir/dataset.cc.o.d"
  "CMakeFiles/sp_core.dir/directed.cc.o"
  "CMakeFiles/sp_core.dir/directed.cc.o.d"
  "CMakeFiles/sp_core.dir/infer.cc.o"
  "CMakeFiles/sp_core.dir/infer.cc.o.d"
  "CMakeFiles/sp_core.dir/insertion.cc.o"
  "CMakeFiles/sp_core.dir/insertion.cc.o.d"
  "CMakeFiles/sp_core.dir/oracle.cc.o"
  "CMakeFiles/sp_core.dir/oracle.cc.o.d"
  "CMakeFiles/sp_core.dir/pmm.cc.o"
  "CMakeFiles/sp_core.dir/pmm.cc.o.d"
  "CMakeFiles/sp_core.dir/snowplow.cc.o"
  "CMakeFiles/sp_core.dir/snowplow.cc.o.d"
  "CMakeFiles/sp_core.dir/train.cc.o"
  "CMakeFiles/sp_core.dir/train.cc.o.d"
  "libsp_core.a"
  "libsp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
