#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace sp {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
splitSeed(uint64_t seed, uint64_t stream)
{
    if (stream == 0)
        return seed;
    uint64_t state = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
    return splitmix64(state);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    SP_ASSERT(bound > 0);
    // Debiased via rejection on the top of the range.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    SP_ASSERT(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

bool
Rng::oneIn(uint64_t n)
{
    SP_ASSERT(n >= 1);
    return below(n) == 0;
}

double
Rng::gaussian()
{
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    SP_ASSERT(!weights.empty());
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0)
        return below(weights.size());
    double point = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        point -= weights[i];
        if (point < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<size_t>
Rng::sampleIndices(size_t n, size_t k)
{
    SP_ASSERT(k <= n);
    std::vector<size_t> pool(n);
    std::iota(pool.begin(), pool.end(), size_t{0});
    for (size_t i = 0; i < k; ++i) {
        size_t j = i + static_cast<size_t>(below(n - i));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

std::array<uint64_t, 4>
Rng::state() const
{
    return {s_[0], s_[1], s_[2], s_[3]};
}

void
Rng::setState(const std::array<uint64_t, 4> &state)
{
    for (size_t i = 0; i < 4; ++i)
        s_[i] = state[i];
}

}  // namespace sp
