#include "mutate/localizer.h"

#include <algorithm>

namespace sp::mut {

std::vector<ArgLocation>
allArgLocations(const prog::Prog &prog)
{
    std::vector<ArgLocation> locations;
    for (size_t i = 0; i < prog.calls.size(); ++i) {
        for (auto &point : prog::mutationPoints(prog.calls[i])) {
            ArgLocation loc;
            loc.call_index = i;
            loc.point = std::move(point);
            locations.push_back(std::move(loc));
        }
    }
    return locations;
}

std::vector<ArgLocation>
RandomLocalizer::localize(const prog::Prog &prog, Rng &rng,
                          size_t max_sites)
{
    auto all = allArgLocations(prog);
    if (all.empty())
        return {};

    std::vector<ArgLocation> chosen;
    if (rng.chance(arity_bias_) && prog.calls.size() > 1) {
        // Syzkaller-style: focus on the call with the largest arity.
        size_t best_call = 0, best_arity = 0;
        std::vector<size_t> per_call(prog.calls.size(), 0);
        for (const auto &loc : all)
            ++per_call[loc.call_index];
        for (size_t i = 0; i < per_call.size(); ++i) {
            if (per_call[i] > best_arity) {
                best_arity = per_call[i];
                best_call = i;
            }
        }
        std::vector<size_t> pool;
        for (size_t i = 0; i < all.size(); ++i)
            if (all[i].call_index == best_call)
                pool.push_back(i);
        const size_t take = std::min(max_sites, pool.size());
        for (size_t pi : rng.sampleIndices(pool.size(), take))
            chosen.push_back(all[pool[pi]]);
    } else {
        const size_t take = std::min(max_sites, all.size());
        for (size_t i : rng.sampleIndices(all.size(), take))
            chosen.push_back(all[i]);
    }
    return chosen;
}

}  // namespace sp::mut
