#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "nn/gemm.h"
#include "nn/inference.h"
#include "obs/timer.h"
#include "util/logging.h"
#include "util/rng.h"

namespace sp::nn {

namespace {

// `zero` false skips the data fill for ops that overwrite every
// element; only the arena-reuse path actually has stale bytes to
// skip (a fresh heap vector zero-fills regardless).
std::shared_ptr<TensorNode>
makeNode(int64_t rows, int64_t cols, bool requires_grad,
         bool zero = true)
{
    // Forward-only nodes come from the thread's arena inside an
    // InferenceScope; explicitly grad-tracking tensors (parameters)
    // always take the heap path.
    if (!requires_grad) {
        if (TensorArena *arena = activeArena())
            return arena->allocate(rows, cols, zero);
    }
    auto node = std::make_shared<TensorNode>();
    node->rows = rows;
    node->cols = cols;
    node->requires_grad = requires_grad;
    node->data.assign(static_cast<size_t>(node->numel()), 0.0f);
    if (requires_grad)
        node->grad.assign(node->data.size(), 0.0f);
    return node;
}

// Result node whose requires_grad is the OR of its parents'. In
// inference mode no tape is built: the node never requires grad and
// records neither parents nor (at the op sites, which all check
// out->requires_grad) a backward closure.
std::shared_ptr<TensorNode>
makeResult(int64_t rows, int64_t cols,
           std::vector<std::shared_ptr<TensorNode>> parents,
           bool zero = true)
{
    if (inInferenceMode())
        return makeNode(rows, cols, false, zero);
    bool needs = false;
    for (const auto &p : parents)
        needs |= p->requires_grad;
    auto node = makeNode(rows, cols, needs, zero);
    node->parents = std::move(parents);
    return node;
}

void
checkSameShape(const Tensor &a, const Tensor &b)
{
    SP_ASSERT(a.rows() == b.rows() && a.cols() == b.cols(),
              "shape mismatch");
}

}  // namespace

Tensor
Tensor::zerosVec(int64_t n, bool requires_grad)
{
    return Tensor(makeNode(n, 0, requires_grad));
}

Tensor
Tensor::zeros(int64_t rows, int64_t cols, bool requires_grad)
{
    SP_ASSERT(cols > 0);
    return Tensor(makeNode(rows, cols, requires_grad));
}

Tensor
Tensor::fromVector(std::vector<float> values, bool requires_grad)
{
    auto node = makeNode(static_cast<int64_t>(values.size()), 0,
                         requires_grad);
    node->data = std::move(values);
    return Tensor(node);
}

Tensor
Tensor::fromMatrix(std::vector<float> values, int64_t rows, int64_t cols,
                   bool requires_grad)
{
    SP_ASSERT(static_cast<int64_t>(values.size()) == rows * cols);
    auto node = makeNode(rows, cols, requires_grad);
    node->data = std::move(values);
    return Tensor(node);
}

Tensor
Tensor::randn(Rng &rng, int64_t rows, int64_t cols, float scale,
              bool requires_grad)
{
    auto node = makeNode(rows, cols, requires_grad);
    for (auto &v : node->data)
        v = static_cast<float>(rng.gaussian()) * scale;
    return Tensor(node);
}

Tensor
Tensor::scalar(float value, bool requires_grad)
{
    auto node = makeNode(1, 0, requires_grad);
    node->data[0] = value;
    return Tensor(node);
}

float
Tensor::item() const
{
    SP_ASSERT(numel() == 1);
    return node_->data[0];
}

float
Tensor::at(int64_t i) const
{
    SP_ASSERT(!isMatrix() && i >= 0 && i < rows());
    return node_->data[static_cast<size_t>(i)];
}

float
Tensor::at(int64_t r, int64_t c) const
{
    SP_ASSERT(isMatrix() && r >= 0 && r < rows() && c >= 0 && c < cols());
    return node_->data[static_cast<size_t>(r * cols() + c)];
}

void
Tensor::set(int64_t i, float v)
{
    SP_ASSERT(!isMatrix() && i >= 0 && i < rows());
    node_->data[static_cast<size_t>(i)] = v;
}

void
Tensor::set(int64_t r, int64_t c, float v)
{
    SP_ASSERT(isMatrix() && r >= 0 && r < rows() && c >= 0 && c < cols());
    node_->data[static_cast<size_t>(r * cols() + c)] = v;
}

void
Tensor::backward()
{
    SP_ASSERT(valid(), "backward() on a null tensor");
    if (numel() != 1) {
        SP_PANIC("backward() needs a scalar loss, got shape [%lld, %lld]"
                 " — reduce with sumAll/meanAll first",
                 static_cast<long long>(node_->rows),
                 static_cast<long long>(node_->cols));
    }
    if (!node_->requires_grad) {
        SP_PANIC("backward() on a tensor that does not require grad "
                 "(inside an InferenceScope no tape is recorded)");
    }

    // Reverse-topological order by iterative DFS.
    std::vector<TensorNode *> order;
    std::unordered_set<TensorNode *> visited;
    std::vector<std::pair<TensorNode *, size_t>> stack;
    stack.emplace_back(node_.get(), 0);
    visited.insert(node_.get());
    while (!stack.empty()) {
        auto &[node, next_child] = stack.back();
        if (next_child < node->parents.size()) {
            TensorNode *parent = node->parents[next_child++].get();
            if (parent->requires_grad && visited.insert(parent).second)
                stack.emplace_back(parent, 0);
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }

    node_->grad.assign(node_->data.size(), 0.0f);
    node_->grad[0] = 1.0f;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if ((*it)->backward_fn)
            (*it)->backward_fn();
    }
}

void
Tensor::zeroGrad()
{
    if (node_->requires_grad)
        std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    SP_ASSERT(a.isMatrix() && b.isMatrix() && a.cols() == b.rows(),
              "matmul shape mismatch");
    const int64_t n = a.rows(), k = a.cols(), m = b.cols();
    auto out = makeResult(n, m, {a.node(), b.node()});

    {
        SP_TIMED("nn.gemm_us");
        gemmAcc(a.data().data(), b.data().data(), out->data.data(), n,
                k, m);
    }

    if (out->requires_grad) {
        auto an = a.node(), bn = b.node();
        auto on = out.get();
        out->backward_fn = [an, bn, on, n, k, m] {
            const float *gd = on->grad.data();
            if (an->requires_grad) {
                // dA = dOut * B^T
                gemmAccTransB(gd, bn->data.data(), an->grad.data(), n,
                              m, k);
            }
            if (bn->requires_grad) {
                // dB = A^T * dOut
                gemmAccTransA(an->data.data(), gd, bn->grad.data(), n,
                              k, m);
            }
        };
    }
    return Tensor(out);
}

Tensor
affine(const Tensor &a, const Tensor &w, const Tensor &b)
{
    SP_ASSERT(a.isMatrix() && w.isMatrix() && a.cols() == w.rows(),
              "affine shape mismatch");
    SP_ASSERT(!b.isMatrix() && b.rows() == w.cols(),
              "affine bias shape mismatch");
    const int64_t n = a.rows(), k = a.cols(), m = w.cols();
    auto out = makeResult(n, m, {a.node(), w.node(), b.node()},
                          /*zero=*/false);
    // Seed every output row with the bias, then accumulate the
    // product on top: bias + dot == dot + bias exactly.
    for (int64_t i = 0; i < n; ++i)
        std::copy_n(b.data().data(), m, out->data.data() + i * m);
    {
        SP_TIMED("nn.gemm_us");
        gemmAcc(a.data().data(), w.data().data(), out->data.data(), n,
                k, m);
    }

    if (out->requires_grad) {
        auto an = a.node(), wn = w.node(), bn = b.node();
        auto on = out.get();
        out->backward_fn = [an, wn, bn, on, n, k, m] {
            const float *gd = on->grad.data();
            if (an->requires_grad) {
                // dA = dOut * W^T
                gemmAccTransB(gd, wn->data.data(), an->grad.data(), n,
                              m, k);
            }
            if (wn->requires_grad) {
                // dW = A^T * dOut
                gemmAccTransA(an->data.data(), gd, wn->grad.data(), n,
                              k, m);
            }
            if (bn->requires_grad) {
                // db = column sums of dOut
                for (int64_t i = 0; i < n; ++i)
                    for (int64_t j = 0; j < m; ++j)
                        bn->grad[j] += gd[i * m + j];
            }
        };
    }
    return Tensor(out);
}

Tensor
segmentMeanRows(const Tensor &a, const std::vector<int32_t> &src,
                const std::vector<int32_t> &dst, int64_t out_rows)
{
    SP_ASSERT(a.isMatrix());
    SP_ASSERT(src.size() == dst.size(),
              "segmentMeanRows needs one (src, dst) pair per edge");
    const int64_t m = a.cols();
    const auto edges = static_cast<int64_t>(src.size());
    auto out = makeResult(out_rows, m, {a.node()});

    // In-degree reciprocals; thread-local so steady-state inference
    // passes stay allocation-free.
    thread_local std::vector<float> inv_degree;
    inv_degree.assign(static_cast<size_t>(out_rows), 0.0f);
    for (int32_t d : dst) {
        SP_ASSERT(d >= 0 && d < out_rows,
                  "segmentMeanRows dst out of range");
        inv_degree[static_cast<size_t>(d)] += 1.0f;
    }
    for (auto &d : inv_degree)
        d = d > 0.0f ? 1.0f / d : 0.0f;

    for (int64_t e = 0; e < edges; ++e) {
        SP_ASSERT(src[e] >= 0 && src[e] < a.rows(),
                  "segmentMeanRows src out of range");
        float *out_row = out->data.data() + dst[e] * m;
        const float *in_row = a.data().data() + src[e] * m;
        for (int64_t j = 0; j < m; ++j)
            out_row[j] += in_row[j];
    }
    for (int64_t i = 0; i < out_rows; ++i) {
        const float scale = inv_degree[static_cast<size_t>(i)];
        if (scale == 0.0f)
            continue;  // row untouched: stays exactly zero
        float *out_row = out->data.data() + i * m;
        for (int64_t j = 0; j < m; ++j)
            out_row[j] *= scale;
    }

    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        auto src_idx = src;
        auto dst_idx = dst;
        auto inv = inv_degree;  // captured by value for the tape
        out->backward_fn = [an, on, src_idx, dst_idx, inv, edges, m] {
            for (int64_t e = 0; e < edges; ++e) {
                const float scale =
                    inv[static_cast<size_t>(dst_idx[e])];
                const float *g = on->grad.data() + dst_idx[e] * m;
                float *dst_row = an->grad.data() + src_idx[e] * m;
                for (int64_t j = 0; j < m; ++j)
                    dst_row[j] += g[j] * scale;
            }
        };
    }
    return Tensor(out);
}

namespace {

// Shared helper for elementwise binary ops with per-element gradients.
template <typename Fwd, typename BwdA, typename BwdB>
Tensor
elementwiseBinary(const Tensor &a, const Tensor &b, Fwd fwd, BwdA bwd_a,
                  BwdB bwd_b)
{
    checkSameShape(a, b);
    auto out = makeResult(a.rows(), a.cols(), {a.node(), b.node()},
                          /*zero=*/false);
    const size_t n = out->data.size();
    for (size_t i = 0; i < n; ++i)
        out->data[i] = fwd(a.data()[i], b.data()[i]);
    if (out->requires_grad) {
        auto an = a.node(), bn = b.node();
        auto on = out.get();
        out->backward_fn = [an, bn, on, n, bwd_a, bwd_b] {
            for (size_t i = 0; i < n; ++i) {
                const float g = on->grad[i];
                if (an->requires_grad)
                    an->grad[i] += g * bwd_a(an->data[i], bn->data[i]);
                if (bn->requires_grad)
                    bn->grad[i] += g * bwd_b(an->data[i], bn->data[i]);
            }
        };
    }
    return Tensor(out);
}

// Shared helper for elementwise unary ops where the local derivative is a
// function of the *output* value (covers relu/tanh/sigmoid).
template <typename Fwd, typename BwdFromOut>
Tensor
elementwiseUnary(const Tensor &a, Fwd fwd, BwdFromOut bwd)
{
    auto out = makeResult(a.rows(), a.cols(), {a.node()},
                          /*zero=*/false);
    const size_t n = out->data.size();
    for (size_t i = 0; i < n; ++i)
        out->data[i] = fwd(a.data()[i]);
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on, n, bwd] {
            for (size_t i = 0; i < n; ++i)
                an->grad[i] += on->grad[i] * bwd(on->data[i]);
        };
    }
    return Tensor(out);
}

}  // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    return elementwiseBinary(
        a, b, [](float x, float y) { return x + y; },
        [](float, float) { return 1.0f; },
        [](float, float) { return 1.0f; });
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    return elementwiseBinary(
        a, b, [](float x, float y) { return x - y; },
        [](float, float) { return 1.0f; },
        [](float, float) { return -1.0f; });
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    return elementwiseBinary(
        a, b, [](float x, float y) { return x * y; },
        [](float, float y) { return y; },
        [](float x, float) { return x; });
}

Tensor
addRowVec(const Tensor &a, const Tensor &b)
{
    SP_ASSERT(a.isMatrix() && !b.isMatrix() && b.rows() == a.cols(),
              "addRowVec shape mismatch");
    const int64_t n = a.rows(), m = a.cols();
    auto out = makeResult(n, m, {a.node(), b.node()}, /*zero=*/false);
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j)
            out->data[i * m + j] = a.data()[i * m + j] + b.data()[j];
    if (out->requires_grad) {
        auto an = a.node(), bn = b.node();
        auto on = out.get();
        out->backward_fn = [an, bn, on, n, m] {
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = 0; j < m; ++j) {
                    const float g = on->grad[i * m + j];
                    if (an->requires_grad)
                        an->grad[i * m + j] += g;
                    if (bn->requires_grad)
                        bn->grad[j] += g;
                }
        };
    }
    return Tensor(out);
}

Tensor
mulRowVec(const Tensor &a, const Tensor &b)
{
    SP_ASSERT(a.isMatrix() && !b.isMatrix() && b.rows() == a.cols(),
              "mulRowVec shape mismatch");
    const int64_t n = a.rows(), m = a.cols();
    auto out = makeResult(n, m, {a.node(), b.node()}, /*zero=*/false);
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j)
            out->data[i * m + j] = a.data()[i * m + j] * b.data()[j];
    if (out->requires_grad) {
        auto an = a.node(), bn = b.node();
        auto on = out.get();
        out->backward_fn = [an, bn, on, n, m] {
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = 0; j < m; ++j) {
                    const float g = on->grad[i * m + j];
                    if (an->requires_grad)
                        an->grad[i * m + j] += g * bn->data[j];
                    if (bn->requires_grad)
                        bn->grad[j] += g * an->data[i * m + j];
                }
        };
    }
    return Tensor(out);
}

Tensor
scale(const Tensor &a, float factor)
{
    return elementwiseUnary(
        a, [factor](float x) { return x * factor; },
        [factor](float) { return factor; });
}

Tensor
relu(const Tensor &a)
{
    return elementwiseUnary(
        a, [](float x) { return x > 0.0f ? x : 0.0f; },
        [](float y) { return y > 0.0f ? 1.0f : 0.0f; });
}

Tensor
tanhT(const Tensor &a)
{
    return elementwiseUnary(
        a, [](float x) { return std::tanh(x); },
        [](float y) { return 1.0f - y * y; });
}

Tensor
sigmoid(const Tensor &a)
{
    return elementwiseUnary(
        a,
        [](float x) {
            return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                             : std::exp(x) / (1.0f + std::exp(x));
        },
        [](float y) { return y * (1.0f - y); });
}

Tensor
gatherRows(const Tensor &a, const std::vector<int32_t> &index)
{
    SP_ASSERT(a.isMatrix());
    const int64_t m = a.cols();
    const int64_t n = static_cast<int64_t>(index.size());
    auto out = makeResult(n, m, {a.node()}, /*zero=*/false);
    for (int64_t i = 0; i < n; ++i) {
        SP_ASSERT(index[i] >= 0 && index[i] < a.rows(),
                  "gatherRows index out of range");
        std::copy_n(a.data().data() + index[i] * m, m,
                    out->data.data() + i * m);
    }
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        auto idx = index;
        out->backward_fn = [an, on, idx, n, m] {
            for (int64_t i = 0; i < n; ++i) {
                float *dst = an->grad.data() + idx[i] * m;
                const float *src = on->grad.data() + i * m;
                for (int64_t j = 0; j < m; ++j)
                    dst[j] += src[j];
            }
        };
    }
    return Tensor(out);
}

Tensor
scatterAddRows(const Tensor &a, const std::vector<int32_t> &index,
               int64_t out_rows)
{
    SP_ASSERT(a.isMatrix());
    SP_ASSERT(static_cast<int64_t>(index.size()) == a.rows(),
              "scatterAddRows needs one index per input row");
    const int64_t m = a.cols();
    const int64_t n = a.rows();
    auto out = makeResult(out_rows, m, {a.node()});
    for (int64_t i = 0; i < n; ++i) {
        SP_ASSERT(index[i] >= 0 && index[i] < out_rows,
                  "scatterAddRows index out of range");
        float *dst = out->data.data() + index[i] * m;
        const float *src = a.data().data() + i * m;
        for (int64_t j = 0; j < m; ++j)
            dst[j] += src[j];
    }
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        auto idx = index;
        out->backward_fn = [an, on, idx, n, m] {
            for (int64_t i = 0; i < n; ++i) {
                const float *src = on->grad.data() + idx[i] * m;
                float *dst = an->grad.data() + i * m;
                for (int64_t j = 0; j < m; ++j)
                    dst[j] += src[j];
            }
        };
    }
    return Tensor(out);
}

Tensor
rowScale(const Tensor &a, const std::vector<float> &scales)
{
    SP_ASSERT(a.isMatrix());
    SP_ASSERT(static_cast<int64_t>(scales.size()) == a.rows());
    const int64_t n = a.rows(), m = a.cols();
    auto out = makeResult(n, m, {a.node()}, /*zero=*/false);
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j)
            out->data[i * m + j] = a.data()[i * m + j] * scales[i];
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        auto sc = scales;
        out->backward_fn = [an, on, sc, n, m] {
            for (int64_t i = 0; i < n; ++i)
                for (int64_t j = 0; j < m; ++j)
                    an->grad[i * m + j] += on->grad[i * m + j] * sc[i];
        };
    }
    return Tensor(out);
}

Tensor
rowScaleT(const Tensor &a, const Tensor &v)
{
    SP_ASSERT(a.isMatrix() && !v.isMatrix() && v.rows() == a.rows(),
              "rowScaleT shape mismatch");
    const int64_t n = a.rows(), m = a.cols();
    auto out = makeResult(n, m, {a.node(), v.node()}, /*zero=*/false);
    for (int64_t i = 0; i < n; ++i)
        for (int64_t j = 0; j < m; ++j)
            out->data[i * m + j] = a.data()[i * m + j] * v.data()[i];
    if (out->requires_grad) {
        auto an = a.node(), vn = v.node();
        auto on = out.get();
        out->backward_fn = [an, vn, on, n, m] {
            for (int64_t i = 0; i < n; ++i) {
                for (int64_t j = 0; j < m; ++j) {
                    const float g = on->grad[i * m + j];
                    if (an->requires_grad)
                        an->grad[i * m + j] += g * vn->data[i];
                    if (vn->requires_grad)
                        vn->grad[i] += g * an->data[i * m + j];
                }
            }
        };
    }
    return Tensor(out);
}

Tensor
leakyRelu(const Tensor &a, float slope)
{
    return elementwiseUnary(
        a, [slope](float x) { return x > 0.0f ? x : slope * x; },
        [slope](float y) { return y > 0.0f ? 1.0f : slope; });
}

Tensor
segmentSoftmax(const Tensor &scores, const std::vector<int32_t> &segment,
               int32_t num_segments)
{
    SP_ASSERT(!scores.isMatrix());
    const auto n = static_cast<size_t>(scores.rows());
    SP_ASSERT(segment.size() == n);
    auto out = makeResult(static_cast<int64_t>(n), 0, {scores.node()},
                          /*zero=*/false);

    // Per-segment max for stability, then exp and per-segment sum.
    // Thread-local scratch: reused across calls so repeated inference
    // passes stay allocation-free.
    thread_local std::vector<float> seg_max, seg_sum;
    seg_max.assign(static_cast<size_t>(num_segments), -3.4e38f);
    for (size_t i = 0; i < n; ++i) {
        SP_ASSERT(segment[i] >= 0 && segment[i] < num_segments);
        seg_max[static_cast<size_t>(segment[i])] =
            std::max(seg_max[static_cast<size_t>(segment[i])],
                     scores.data()[i]);
    }
    seg_sum.assign(static_cast<size_t>(num_segments), 0.0f);
    for (size_t i = 0; i < n; ++i) {
        const float e = std::exp(
            scores.data()[i] - seg_max[static_cast<size_t>(segment[i])]);
        out->data[i] = e;
        seg_sum[static_cast<size_t>(segment[i])] += e;
    }
    for (size_t i = 0; i < n; ++i)
        out->data[i] /= seg_sum[static_cast<size_t>(segment[i])];

    if (out->requires_grad) {
        auto sn = scores.node();
        auto on = out.get();
        auto seg = segment;
        out->backward_fn = [sn, on, seg, n, num_segments] {
            // Per segment: dx_i = y_i * (g_i - sum_j g_j y_j).
            std::vector<float> dot(static_cast<size_t>(num_segments),
                                   0.0f);
            for (size_t i = 0; i < n; ++i) {
                dot[static_cast<size_t>(seg[i])] +=
                    on->grad[i] * on->data[i];
            }
            for (size_t i = 0; i < n; ++i) {
                sn->grad[i] += on->data[i] *
                               (on->grad[i] -
                                dot[static_cast<size_t>(seg[i])]);
            }
        };
    }
    return Tensor(out);
}

Tensor
concatCols(const std::vector<Tensor> &parts)
{
    SP_ASSERT(!parts.empty());
    const int64_t n = parts[0].rows();
    int64_t total_cols = 0;
    std::vector<std::shared_ptr<TensorNode>> parents;
    for (const auto &p : parts) {
        SP_ASSERT(p.isMatrix() && p.rows() == n,
                  "concatCols row count mismatch");
        total_cols += p.cols();
        parents.push_back(p.node());
    }
    auto out = makeResult(n, total_cols, parents, /*zero=*/false);
    int64_t offset = 0;
    for (const auto &p : parts) {
        const int64_t m = p.cols();
        for (int64_t i = 0; i < n; ++i)
            std::copy_n(p.data().data() + i * m, m,
                        out->data.data() + i * total_cols + offset);
        offset += m;
    }
    if (out->requires_grad) {
        auto on = out.get();
        auto parent_nodes = parents;
        out->backward_fn = [on, parent_nodes, n, total_cols] {
            int64_t off = 0;
            for (const auto &pn : parent_nodes) {
                const int64_t m = pn->cols;
                if (pn->requires_grad) {
                    for (int64_t i = 0; i < n; ++i) {
                        const float *src =
                            on->grad.data() + i * total_cols + off;
                        float *dst = pn->grad.data() + i * m;
                        for (int64_t j = 0; j < m; ++j)
                            dst[j] += src[j];
                    }
                }
                off += m;
            }
        };
    }
    return Tensor(out);
}

Tensor
concatRows(const std::vector<Tensor> &parts)
{
    SP_ASSERT(!parts.empty());
    const int64_t m = parts[0].cols();
    int64_t total_rows = 0;
    std::vector<std::shared_ptr<TensorNode>> parents;
    for (const auto &p : parts) {
        SP_ASSERT(p.isMatrix() && p.cols() == m,
                  "concatRows column count mismatch");
        total_rows += p.rows();
        parents.push_back(p.node());
    }
    auto out = makeResult(total_rows, m, parents, /*zero=*/false);
    int64_t row = 0;
    for (const auto &p : parts) {
        std::copy(p.data().begin(), p.data().end(),
                  out->data.begin() + row * m);
        row += p.rows();
    }
    if (out->requires_grad) {
        auto on = out.get();
        auto parent_nodes = parents;
        out->backward_fn = [on, parent_nodes, m] {
            int64_t row_off = 0;
            for (const auto &pn : parent_nodes) {
                if (pn->requires_grad) {
                    const float *src = on->grad.data() + row_off * m;
                    for (size_t j = 0; j < pn->grad.size(); ++j)
                        pn->grad[j] += src[j];
                }
                row_off += pn->rows;
            }
        };
    }
    return Tensor(out);
}

Tensor
layerNormRows(const Tensor &a, float eps)
{
    SP_ASSERT(a.isMatrix());
    const int64_t n = a.rows(), m = a.cols();
    auto out = makeResult(n, m, {a.node()}, /*zero=*/false);
    // inv_std is only kept for the backward pass; inference-mode
    // forwards skip the allocation entirely.
    std::vector<float> inv_std;
    if (out->requires_grad)
        inv_std.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
        const float *row = a.data().data() + i * m;
        float mean = 0.0f;
        for (int64_t j = 0; j < m; ++j)
            mean += row[j];
        mean /= static_cast<float>(m);
        float var = 0.0f;
        for (int64_t j = 0; j < m; ++j) {
            float d = row[j] - mean;
            var += d * d;
        }
        var /= static_cast<float>(m);
        const float is = 1.0f / std::sqrt(var + eps);
        if (!inv_std.empty())
            inv_std[static_cast<size_t>(i)] = is;
        for (int64_t j = 0; j < m; ++j)
            out->data[i * m + j] = (row[j] - mean) * is;
    }
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on, inv_std, n, m] {
            // d x_j = is * (g_j - mean(g) - y_j * mean(g * y))
            for (int64_t i = 0; i < n; ++i) {
                const float *g = on->grad.data() + i * m;
                const float *y = on->data.data() + i * m;
                float g_mean = 0.0f, gy_mean = 0.0f;
                for (int64_t j = 0; j < m; ++j) {
                    g_mean += g[j];
                    gy_mean += g[j] * y[j];
                }
                g_mean /= static_cast<float>(m);
                gy_mean /= static_cast<float>(m);
                const float is = inv_std[static_cast<size_t>(i)];
                float *dst = an->grad.data() + i * m;
                for (int64_t j = 0; j < m; ++j)
                    dst[j] += is * (g[j] - g_mean - y[j] * gy_mean);
            }
        };
    }
    return Tensor(out);
}

Tensor
softmaxRows(const Tensor &a)
{
    SP_ASSERT(a.isMatrix());
    const int64_t n = a.rows(), m = a.cols();
    auto out = makeResult(n, m, {a.node()}, /*zero=*/false);
    for (int64_t i = 0; i < n; ++i) {
        const float *row = a.data().data() + i * m;
        float mx = row[0];
        for (int64_t j = 1; j < m; ++j)
            mx = std::max(mx, row[j]);
        float total = 0.0f;
        for (int64_t j = 0; j < m; ++j) {
            float e = std::exp(row[j] - mx);
            out->data[i * m + j] = e;
            total += e;
        }
        for (int64_t j = 0; j < m; ++j)
            out->data[i * m + j] /= total;
    }
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on, n, m] {
            for (int64_t i = 0; i < n; ++i) {
                const float *g = on->grad.data() + i * m;
                const float *y = on->data.data() + i * m;
                float dot = 0.0f;
                for (int64_t j = 0; j < m; ++j)
                    dot += g[j] * y[j];
                float *dst = an->grad.data() + i * m;
                for (int64_t j = 0; j < m; ++j)
                    dst[j] += y[j] * (g[j] - dot);
            }
        };
    }
    return Tensor(out);
}

Tensor
flatten(const Tensor &a)
{
    auto out = makeResult(a.numel(), 0, {a.node()}, /*zero=*/false);
    out->data = a.data();
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on] {
            for (size_t i = 0; i < an->grad.size(); ++i)
                an->grad[i] += on->grad[i];
        };
    }
    return Tensor(out);
}

Tensor
meanAll(const Tensor &a)
{
    auto out = makeResult(1, 0, {a.node()});
    const size_t n = a.node()->data.size();
    double total = 0.0;
    for (float v : a.data())
        total += v;
    out->data[0] = static_cast<float>(total / static_cast<double>(n));
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on, n] {
            const float g = on->grad[0] / static_cast<float>(n);
            for (auto &gv : an->grad)
                gv += g;
        };
    }
    return Tensor(out);
}

Tensor
sumAll(const Tensor &a)
{
    auto out = makeResult(1, 0, {a.node()});
    double total = 0.0;
    for (float v : a.data())
        total += v;
    out->data[0] = static_cast<float>(total);
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on] {
            const float g = on->grad[0];
            for (auto &gv : an->grad)
                gv += g;
        };
    }
    return Tensor(out);
}

Tensor
bceWithLogits(const Tensor &logits, const std::vector<float> &targets,
              const std::vector<float> &weights)
{
    SP_ASSERT(!logits.isMatrix());
    const size_t n = logits.data().size();
    SP_ASSERT(targets.size() == n && weights.size() == n);
    auto out = makeResult(1, 0, {logits.node()});
    double total = 0.0;
    double weight_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const float x = logits.data()[i];
        // log(1 + exp(x)) - y*x, computed stably.
        const float softplus =
            x > 0.0f ? x + std::log1p(std::exp(-x))
                     : std::log1p(std::exp(x));
        total += weights[i] * (softplus - targets[i] * x);
        weight_sum += weights[i];
    }
    if (weight_sum <= 0.0)
        weight_sum = 1.0;
    out->data[0] = static_cast<float>(total / weight_sum);
    if (out->requires_grad) {
        auto ln = logits.node();
        auto on = out.get();
        auto t = targets;
        auto w = weights;
        const float inv_w = static_cast<float>(1.0 / weight_sum);
        out->backward_fn = [ln, on, t, w, n, inv_w] {
            const float g = on->grad[0] * inv_w;
            for (size_t i = 0; i < n; ++i) {
                const float x = ln->data[i];
                const float s =
                    x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                              : std::exp(x) / (1.0f + std::exp(x));
                ln->grad[i] += g * w[i] * (s - t[i]);
            }
        };
    }
    return Tensor(out);
}

Tensor
crossEntropyRows(const Tensor &logits,
                 const std::vector<int32_t> &targets)
{
    SP_ASSERT(logits.isMatrix());
    const int64_t n = logits.rows(), c = logits.cols();
    SP_ASSERT(static_cast<int64_t>(targets.size()) == n);
    auto out = makeResult(1, 0, {logits.node()});

    // Cache the softmax for the backward pass.
    std::vector<float> softmax(static_cast<size_t>(n * c));
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        SP_ASSERT(targets[i] >= 0 && targets[i] < c,
                  "crossEntropyRows target out of range");
        const float *row = logits.data().data() + i * c;
        float mx = row[0];
        for (int64_t j = 1; j < c; ++j)
            mx = std::max(mx, row[j]);
        double denom = 0.0;
        for (int64_t j = 0; j < c; ++j)
            denom += std::exp(static_cast<double>(row[j] - mx));
        for (int64_t j = 0; j < c; ++j) {
            softmax[static_cast<size_t>(i * c + j)] = static_cast<float>(
                std::exp(static_cast<double>(row[j] - mx)) / denom);
        }
        total += -(static_cast<double>(row[targets[i]] - mx) -
                   std::log(denom));
    }
    out->data[0] = static_cast<float>(total / static_cast<double>(n));

    if (out->requires_grad) {
        auto ln = logits.node();
        auto on = out.get();
        auto t = targets;
        out->backward_fn = [ln, on, t, softmax = std::move(softmax), n,
                            c] {
            const float g = on->grad[0] / static_cast<float>(n);
            for (int64_t i = 0; i < n; ++i) {
                for (int64_t j = 0; j < c; ++j) {
                    const float indicator = (j == t[i]) ? 1.0f : 0.0f;
                    ln->grad[i * c + j] +=
                        g * (softmax[static_cast<size_t>(i * c + j)] -
                             indicator);
                }
            }
        };
    }
    return Tensor(out);
}

Tensor
dropout(const Tensor &a, float p, Rng &rng, bool training)
{
    if (!training || p <= 0.0f)
        return a;
    SP_ASSERT(p < 1.0f, "dropout probability must be < 1");
    auto out = makeResult(a.rows(), a.cols(), {a.node()},
                          /*zero=*/false);
    const size_t n = out->data.size();
    std::vector<float> mask(n);
    const float keep_scale = 1.0f / (1.0f - p);
    for (size_t i = 0; i < n; ++i)
        mask[i] = rng.chance(p) ? 0.0f : keep_scale;
    for (size_t i = 0; i < n; ++i)
        out->data[i] = a.data()[i] * mask[i];
    if (out->requires_grad) {
        auto an = a.node();
        auto on = out.get();
        out->backward_fn = [an, on, mask = std::move(mask), n] {
            for (size_t i = 0; i < n; ++i)
                an->grad[i] += on->grad[i] * mask[i];
        };
    }
    return Tensor(out);
}

}  // namespace sp::nn
