#include "fuzz/fuzzer.h"

#include "prog/gen.h"
#include "util/logging.h"

namespace sp::fuzz {

namespace {

exec::ExecOptions
execOptionsFor(const FuzzOptions &opts)
{
    exec::ExecOptions exec_opts;
    exec_opts.deterministic = !opts.noisy;
    exec_opts.noise_seed = opts.seed ^ 0xabcdef;
    return exec_opts;
}

}  // namespace

Fuzzer::Fuzzer(const kern::Kernel &kernel, FuzzOptions options,
               std::unique_ptr<mut::Localizer> localizer)
    : kernel_(kernel), opts_(std::move(options)),
      localizer_(std::move(localizer)),
      mutator_(kernel.table(), opts_.mutator),
      executor_(kernel, execOptionsFor(opts_)), crashes_(kernel),
      rng_(opts_.seed)
{
    SP_ASSERT(localizer_ != nullptr, "fuzzer needs a localizer");
}

void
Fuzzer::executeOne(const prog::Prog &program)
{
    auto result = executor_.run(program);
    ++execs_;
    if (result.crashed)
        crashes_.record(result.bug_index, program, execs_);
    corpus_.maybeAdd(program, result, execs_);
    maybeCheckpoint();
}

void
Fuzzer::maybeCheckpoint()
{
    if (execs_ % opts_.checkpoint_every != 0)
        return;
    Checkpoint cp;
    cp.execs = execs_;
    cp.edges = corpus_.totalCoverage().edgeCount();
    cp.blocks = corpus_.totalCoverage().blockCount();
    cp.crashes = crashes_.uniqueCrashes();
    timeline_.push_back(cp);
}

void
Fuzzer::seedCorpus()
{
    auto seeds = prog::generateCorpus(rng_, kernel_.table(),
                                      opts_.seed_corpus_size,
                                      opts_.mutator.gen);
    for (const auto &seed : seeds)
        executeOne(seed);
}

FuzzReport
Fuzzer::run()
{
    return runUntil([](const Fuzzer &) { return false; });
}

FuzzReport
Fuzzer::runUntil(const std::function<bool(const Fuzzer &)> &stop)
{
    if (corpus_.empty())
        seedCorpus();

    while (execs_ < opts_.exec_budget && !stop(*this)) {
        if (corpus_.empty()) {
            // Everything crashed at seed time; regenerate.
            seedCorpus();
            continue;
        }
        // Copy the picked entry out: executing mutants below can grow
        // the corpus vector and invalidate references into it.
        prog::Prog base_program;
        exec::ExecResult base_result;
        {
            const CorpusEntry &picked =
                opts_.choose_test ? opts_.choose_test(corpus_, rng_)
                                  : corpus_.pick(rng_);
            base_program.calls = picked.program.calls;
            base_result = picked.result;
        }

        // Argument mutations at localized sites. The base program is
        // copied once per instantiated mutant.
        auto sites = localizer_->localizeWithResult(
            base_program, base_result, rng_, opts_.max_sites_per_base);
        for (const auto &site : sites) {
            for (size_t m = 0;
                 m < opts_.mutations_per_site &&
                 execs_ < opts_.exec_budget;
                 ++m) {
                prog::Prog mutant;
                mutant.calls = base_program.calls;
                if (!mutator_.instantiateArgMutation(mutant, site, rng_))
                    break;
                executeOne(mutant);
            }
            if (execs_ >= opts_.exec_budget || stop(*this))
                break;
        }

        // Structural mutations (insertion/removal) with their own
        // selector weights — the "existing random mutators" lane.
        for (size_t s = 0; s < opts_.structural_mutations_per_base &&
                           execs_ < opts_.exec_budget;
             ++s) {
            prog::Prog mutant;
            mutant.calls = base_program.calls;
            switch (mutator_.selectType(rng_, mutant)) {
              case mut::MutationType::ArgumentMutation: {
                // Selector landed on arguments: one random-site mutant
                // (the fallback lane even when a learned localizer is
                // installed, §3.4).
                mut::RandomLocalizer fallback;
                auto fallback_sites =
                    fallback.localize(mutant, rng_, 1);
                if (!fallback_sites.empty()) {
                    mutator_.instantiateArgMutation(
                        mutant, fallback_sites[0], rng_);
                }
                break;
              }
              case mut::MutationType::CallInsertion:
                mutator_.insertCall(mutant, rng_);
                break;
              case mut::MutationType::CallRemoval:
                mutator_.removeCall(mutant, rng_);
                break;
            }
            executeOne(mutant);
        }
    }

    FuzzReport report;
    report.timeline = timeline_;
    report.final_edges = corpus_.totalCoverage().edgeCount();
    report.final_blocks = corpus_.totalCoverage().blockCount();
    report.execs = execs_;
    report.corpus_size = corpus_.size();
    return report;
}

}  // namespace sp::fuzz
