#include "core/oracle.h"

#include <algorithm>
#include <unordered_map>

#include "prog/flatten.h"
#include "util/hash.h"

namespace sp::core {

OracleLocalizer::OracleLocalizer(const kern::Kernel &kernel)
    : kernel_(kernel), probe_(kernel)
{
}

std::vector<mut::ArgLocation>
OracleLocalizer::localize(const prog::Prog &prog, Rng &rng,
                          size_t max_sites)
{
    auto result = probe_.run(prog);
    return localizeWithResult(prog, result, rng, max_sites);
}

std::vector<mut::ArgLocation>
OracleLocalizer::localizeWithResult(const prog::Prog &prog,
                                    const exec::ExecResult &result,
                                    Rng &rng, size_t max_sites)
{
    // For every executed branch whose other side is uncovered, find the
    // argument of the executing call that the guard reads. Sites are
    // scored: an argument guarding many frontier branches, or guarding
    // one whose comparison constant lies in the argument's declared
    // domain (so instantiation can actually hit it), is more promising.
    std::vector<mut::ArgLocation> sites;
    std::vector<double> scores;
    std::unordered_map<uint64_t, size_t> site_index;
    for (const auto &trace : result.calls) {
        if (trace.call_index >= prog.calls.size())
            continue;
        const prog::Call &call = prog.calls[trace.call_index];
        // Slot -> mutation point of this call.
        auto points = prog::mutationPoints(call);
        const auto descs = prog::enumerateSlots(*call.decl);

        for (uint32_t block : trace.blocks) {
            const auto &bb = kernel_.block(block);
            if (bb.term != kern::Term::Branch ||
                bb.handler != trace.syscall_id) {
                continue;
            }
            switch (bb.cond.kind) {
              case kern::CondKind::Always:
              case kern::CondKind::StateFlagSet:
                continue;
              default:
                break;
            }
            // Is one side of this branch on the frontier?
            const bool taken_new =
                !result.coverage.containsBlock(bb.taken);
            const bool fall_new =
                !result.coverage.containsBlock(bb.fallthrough);
            if (!taken_new && !fall_new)
                continue;
            // Resolve the tested slot to its owning mutable argument.
            for (const auto &desc : descs) {
                if (desc.index != bb.cond.slot)
                    continue;
                for (const auto &point : points) {
                    if (point.path != desc.path)
                        continue;
                    uint64_t key = hashU64(trace.call_index + 1);
                    for (uint16_t step : point.path)
                        key = hashCombine(key, step + 1);
                    double weight = 1.0;
                    const auto &domain = point.type->domain;
                    const bool feasible =
                        domain.empty() ||
                        std::find(domain.begin(), domain.end(),
                                  bb.cond.a) != domain.end() ||
                        bb.cond.kind == kern::CondKind::ArgLt ||
                        bb.cond.kind == kern::CondKind::ArgGe ||
                        bb.cond.kind == kern::CondKind::ArgInRange;
                    if (feasible)
                        weight += 2.0;
                    auto it = site_index.find(key);
                    if (it != site_index.end()) {
                        scores[it->second] += weight;
                        continue;
                    }
                    mut::ArgLocation site;
                    site.call_index = trace.call_index;
                    site.point = point;
                    site_index.emplace(key, sites.size());
                    sites.push_back(std::move(site));
                    scores.push_back(weight);
                }
            }
        }
    }
    if (sites.empty())
        return fallback_.localize(prog, rng, 1);
    // Order by score (jittered so equal scores rotate across picks).
    std::vector<size_t> order(sites.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a] > scores[b];
    });
    std::vector<mut::ArgLocation> ranked;
    ranked.reserve(std::min(order.size(), max_sites));
    for (size_t i : order) {
        if (ranked.size() >= max_sites)
            break;
        // Small chance to skip, so repeated picks explore lower ranks.
        if (rng.chance(0.1) && order.size() > max_sites)
            continue;
        ranked.push_back(sites[i]);
    }
    return ranked;
}

}  // namespace sp::core
