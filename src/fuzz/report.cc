#include "fuzz/report.h"

#include <sstream>

#include "exec/executor.h"
#include "prog/serialize.h"

namespace sp::fuzz {

std::string
formatCrashReport(const kern::Kernel &kernel, const CrashRecord &record)
{
    std::ostringstream out;
    out << "==================================================\n";
    out << "BUG: " << record.description << "\n";
    out << "detector: " << kern::bugKindName(record.kind) << "\n";
    out << "location: " << record.location << "\n";
    out << "kernel:   " << kernel.version() << "\n";
    out << "status:   " << (record.known ? "known" : "NEW")
        << (record.flaky ? ", timing-dependent" : "") << ", hit "
        << record.hit_count << " time(s), first at execution "
        << record.first_seen_exec << "\n";

    // Recover the crashing call's block walk deterministically.
    const prog::Prog &program =
        record.reproduced ? record.reproducer : record.trigger;
    exec::Executor executor(kernel);
    auto result = executor.run(program);
    if (result.crashed && result.bug_index == record.bug_index &&
        !result.calls.empty()) {
        const auto &crash_call = result.calls[result.crash_call];
        const auto &decl =
            kernel.table().byId(crash_call.syscall_id);
        out << "\ncall trace (inside " << decl.name << "):\n";
        for (auto it = crash_call.blocks.rbegin();
             it != crash_call.blocks.rend(); ++it) {
            const auto &bb = kernel.block(*it);
            out << "  block " << bb.id << " [depth " << bb.depth
                << "]";
            if (bb.term == kern::Term::Branch)
                out << "  if (" << bb.cond.describe() << ")";
            if (kernel.bugAt(bb.id) != nullptr)
                out << "  <- faulting block";
            out << "\n";
        }
    } else if (record.flaky) {
        out << "\ncall trace unavailable: crash requires a specific "
               "interleaving (did not re-trigger deterministically)\n";
    }

    out << "\n" << (record.reproduced ? "reproducer" : "last trigger")
        << ":\n" << prog::formatProg(program);
    out << "==================================================\n";
    return out.str();
}

}  // namespace sp::fuzz
