#include "core/infer.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace sp::core {

namespace {

/** Registry handles for the inference service (looked up once). */
struct InferMetrics
{
    obs::Counter &submitted;
    obs::Counter &completed;
    obs::Gauge &queue_depth;
    obs::Histogram &latency_us;

    static InferMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static InferMetrics metrics{
            reg.counter("infer.submitted"),
            reg.counter("infer.completed"),
            reg.gauge("infer.queue_depth"),
            reg.histogram("infer.latency_us"),
        };
        return metrics;
    }
};

}  // namespace

InferenceService::InferenceService(const Pmm &model, size_t workers)
    : model_(model)
{
    SP_ASSERT(workers >= 1);
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

InferenceService::~InferenceService()
{
    {
        std::lock_guard<std::mutex> guard(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

std::future<std::vector<float>>
InferenceService::submit(graph::EncodedGraph graph)
{
    Request request;
    request.graph = std::move(graph);
    request.enqueued = std::chrono::steady_clock::now();
    auto future = request.promise.get_future();
    size_t depth;
    {
        std::lock_guard<std::mutex> guard(mutex_);
        SP_ASSERT(!stopping_, "submit after shutdown");
        queue_.push_back(std::move(request));
        depth = queue_.size();
    }
    InferMetrics &metrics = InferMetrics::get();
    metrics.submitted.inc();
    metrics.queue_depth.set(static_cast<double>(depth));
    cv_.notify_one();
    return future;
}

std::vector<float>
InferenceService::infer(const graph::EncodedGraph &graph) const
{
    return model_.predict(graph);
}

InferenceStats
InferenceService::stats() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    InferenceStats stats;
    stats.completed = completed_;
    stats.mean_latency_us = latency_us_.mean();
    stats.p50_latency_us = latency_us_.percentile(50);
    stats.p95_latency_us = latency_us_.percentile(95);
    stats.p99_latency_us = latency_us_.percentile(99);
    return stats;
}

void
InferenceService::workerLoop()
{
    for (;;) {
        Request request;
        size_t depth;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            request = std::move(queue_.front());
            queue_.pop_front();
            depth = queue_.size();
        }
        InferMetrics &metrics = InferMetrics::get();
        metrics.queue_depth.set(static_cast<double>(depth));

        std::vector<float> probs = model_.predict(request.graph);
        const auto now = std::chrono::steady_clock::now();
        const double latency =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - request.enqueued)
                .count() /
            1000.0;
        {
            std::lock_guard<std::mutex> guard(mutex_);
            ++completed_;
            latency_us_.add(latency);
        }
        metrics.completed.inc();
        if (obs::timingEnabled())
            metrics.latency_us.record(latency);
        if (auto *sink = obs::sink()) {
            sink->event("inference_latency",
                        {{"latency_us", latency},
                         {"queue_depth", depth}});
        }
        request.promise.set_value(std::move(probs));
    }
}

}  // namespace sp::core
