/**
 * @file
 * Random generation of well-formed test programs, mirroring Syzkaller's
 * generator: calls are chosen so that consumed resources usually have an
 * in-program producer, and argument values are drawn from each type's
 * interesting domain with boundary and random excursions.
 */
#ifndef SP_PROG_GEN_H
#define SP_PROG_GEN_H

#include "prog/value.h"
#include "util/rng.h"

namespace sp::prog {

/** Tuning knobs for program generation. */
struct GenOptions
{
    size_t min_calls = 2;
    size_t max_calls = 8;
    /** Probability that a resource argument references a live producer. */
    double resource_bind_prob = 0.9;
    /** Weight penalty for picking a call whose resources are unmet. */
    double unmet_resource_weight = 0.15;
    /** Probability an optional pointer is generated null. */
    double null_ptr_prob = 0.08;
};

/** Generate a random value for `type`. Resources get result_ref -1. */
ArgPtr generateArg(Rng &rng, const TypeRef &type, const GenOptions &opts);

/**
 * Generate a random program over `table`. Resource arguments bind to
 * producers already present in the program when possible.
 */
Prog generateProg(Rng &rng, const SyscallTable &table,
                  const GenOptions &opts = {});

/**
 * Generate a seed corpus of `count` distinct programs (by content hash).
 */
std::vector<Prog> generateCorpus(Rng &rng, const SyscallTable &table,
                                 size_t count, const GenOptions &opts = {});

}  // namespace sp::prog

#endif  // SP_PROG_GEN_H
