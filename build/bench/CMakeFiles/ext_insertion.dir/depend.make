# Empty dependencies file for ext_insertion.
# This may be replaced when dependencies are built.
