/**
 * @file
 * Structural validation of programs: shape agreement with declarations
 * and referential integrity of resource bindings. Used as a test oracle
 * and as a guard after mutations.
 */
#ifndef SP_PROG_VALIDATE_H
#define SP_PROG_VALIDATE_H

#include <optional>
#include <string>

#include "prog/value.h"

namespace sp::prog {

/**
 * Check a program's structural invariants:
 *  - every call has one value per declared argument, types matching;
 *  - struct field arity matches the type;
 *  - non-null pointers carry a pointee of the element type;
 *  - resource references point to an *earlier* call whose return
 *    resource kind matches;
 *  - Len fields equal their sibling buffer's current size.
 *
 * Returns std::nullopt when valid, otherwise a description of the first
 * violation. Value ranges are deliberately not enforced — mutations may
 * take scalars out of range, exactly like a real fuzzer does.
 */
std::optional<std::string> validateProg(const Prog &prog);

}  // namespace sp::prog

#endif  // SP_PROG_VALIDATE_H
