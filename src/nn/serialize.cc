#include "nn/serialize.h"

#include <cstdio>
#include <memory>

#include "util/logging.h"

namespace sp::nn {

namespace {

constexpr uint64_t kMagicV1 = 0x53504e4e434b5031ULL;  // "SPNNCKP1"
constexpr uint64_t kMagic = 0x53504e4e434b5032ULL;    // "SPNNCKP2"
constexpr uint32_t kVersion = 2;
/** Written natively; reads as 0x04030201 on a byte-swapped host. */
constexpr uint32_t kEndianGuard = 0x01020304;

/** Optional-section tags following the parameter table. */
enum SectionKind : uint32_t {
    kSectionOptimizer = 1,
    kSectionTrainer = 2,
};

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void
writeRaw(std::FILE *f, const T &value)
{
    if (std::fwrite(&value, sizeof(T), 1, f) != 1)
        SP_FATAL("checkpoint write failed");
}

template <typename T>
void
readRaw(std::FILE *f, T &value)
{
    if (std::fread(&value, sizeof(T), 1, f) != 1)
        SP_FATAL("checkpoint read failed (truncated file?)");
}

void
writeFloats(std::FILE *f, const std::vector<float> &data)
{
    const uint64_t n = data.size();
    writeRaw(f, n);
    if (n > 0 && std::fwrite(data.data(), sizeof(float), n, f) != n)
        SP_FATAL("checkpoint write failed");
}

void
readFloats(std::FILE *f, std::vector<float> &data)
{
    uint64_t n = 0;
    readRaw(f, n);
    data.resize(n);
    if (n > 0 && std::fread(data.data(), sizeof(float), n, f) != n)
        SP_FATAL("checkpoint read failed (truncated file?)");
}

void
writeHeader(std::FILE *f)
{
    writeRaw(f, kMagic);
    writeRaw(f, kVersion);
    writeRaw(f, kEndianGuard);
}

void
checkHeader(std::FILE *f, const std::string &path)
{
    uint64_t magic = 0;
    readRaw(f, magic);
    if (magic == kMagicV1) {
        SP_FATAL("%s is a format-v1 checkpoint (no version/endianness "
                 "header); re-save it with this build",
                 path.c_str());
    }
    if (magic != kMagic)
        SP_FATAL("%s is not a Snowplow checkpoint (bad magic "
                 "%016llx, expected %016llx)",
                 path.c_str(), static_cast<unsigned long long>(magic),
                 static_cast<unsigned long long>(kMagic));
    uint32_t version = 0;
    readRaw(f, version);
    if (version != kVersion)
        SP_FATAL("%s has checkpoint format version %u; this build "
                 "reads version %u",
                 path.c_str(), version, kVersion);
    uint32_t endian = 0;
    readRaw(f, endian);
    if (endian != kEndianGuard)
        SP_FATAL("%s was written on a host of different endianness "
                 "(guard %08x)",
                 path.c_str(), endian);
}

void
writeParameterTable(std::FILE *f, const Module &module)
{
    const uint64_t count = module.parameters().size();
    writeRaw(f, count);
    for (const auto &p : module.parameters()) {
        const uint64_t name_len = p.name.size();
        writeRaw(f, name_len);
        if (std::fwrite(p.name.data(), 1, p.name.size(), f) !=
            p.name.size()) {
            SP_FATAL("checkpoint write failed");
        }
        const int64_t rows = p.tensor.rows();
        const int64_t cols = p.tensor.cols();
        writeRaw(f, rows);
        writeRaw(f, cols);
        const auto &data = p.tensor.data();
        if (std::fwrite(data.data(), sizeof(float), data.size(), f) !=
            data.size()) {
            SP_FATAL("checkpoint write failed");
        }
    }
}

void
readParameterTable(std::FILE *f, Module &module, const std::string &path)
{
    uint64_t count = 0;
    readRaw(f, count);
    if (count != module.parameters().size()) {
        SP_FATAL("%s has %llu parameters, module has %zu", path.c_str(),
                 static_cast<unsigned long long>(count),
                 module.parameters().size());
    }
    for (const auto &p : module.parameters()) {
        uint64_t name_len = 0;
        readRaw(f, name_len);
        std::string name(name_len, '\0');
        if (name_len > 0 &&
            std::fread(name.data(), 1, name_len, f) != name_len) {
            SP_FATAL("checkpoint read failed (truncated file?)");
        }
        if (name != p.name)
            SP_FATAL("checkpoint parameter %s does not match module "
                     "parameter %s", name.c_str(), p.name.c_str());
        int64_t rows = 0, cols = 0;
        readRaw(f, rows);
        readRaw(f, cols);
        if (rows != p.tensor.rows() || cols != p.tensor.cols())
            SP_FATAL("checkpoint shape mismatch for %s", name.c_str());
        // Parameter handles are shared; write through the node.
        auto &data = const_cast<Parameter &>(p).tensor.mutableData();
        if (std::fread(data.data(), sizeof(float), data.size(), f) !=
            data.size()) {
            SP_FATAL("checkpoint read failed (truncated file?)");
        }
    }
}

void
writeSections(std::FILE *f, const AdamState *optimizer,
              const std::vector<uint8_t> *trainer_state)
{
    if (optimizer != nullptr) {
        writeRaw(f, static_cast<uint32_t>(kSectionOptimizer));
        writeRaw(f, optimizer->step_count);
        const uint64_t params = optimizer->first_moments.size();
        writeRaw(f, params);
        for (uint64_t pi = 0; pi < params; ++pi) {
            writeFloats(f, optimizer->first_moments[pi]);
            writeFloats(f, optimizer->second_moments[pi]);
        }
    }
    if (trainer_state != nullptr) {
        writeRaw(f, static_cast<uint32_t>(kSectionTrainer));
        const uint64_t len = trainer_state->size();
        writeRaw(f, len);
        if (len > 0 &&
            std::fwrite(trainer_state->data(), 1, len, f) != len) {
            SP_FATAL("checkpoint write failed");
        }
    }
}

void
readSections(std::FILE *f, const std::string &path,
             AdamState *optimizer_out,
             std::vector<uint8_t> *trainer_state_out)
{
    uint32_t kind = 0;
    while (std::fread(&kind, sizeof(kind), 1, f) == 1) {
        switch (kind) {
          case kSectionOptimizer: {
            AdamState state;
            readRaw(f, state.step_count);
            uint64_t params = 0;
            readRaw(f, params);
            state.first_moments.resize(params);
            state.second_moments.resize(params);
            for (uint64_t pi = 0; pi < params; ++pi) {
                readFloats(f, state.first_moments[pi]);
                readFloats(f, state.second_moments[pi]);
            }
            if (optimizer_out != nullptr)
                *optimizer_out = std::move(state);
            break;
          }
          case kSectionTrainer: {
            uint64_t len = 0;
            readRaw(f, len);
            std::vector<uint8_t> blob(len);
            if (len > 0 &&
                std::fread(blob.data(), 1, len, f) != len) {
                SP_FATAL("checkpoint read failed (truncated file?)");
            }
            if (trainer_state_out != nullptr)
                *trainer_state_out = std::move(blob);
            break;
          }
          default:
            SP_FATAL("%s: unknown checkpoint section kind %u",
                     path.c_str(), kind);
        }
    }
}

void
writeFile(const Module &module, const std::string &path,
          const AdamState *optimizer,
          const std::vector<uint8_t> *trainer_state)
{
    // Write-then-rename: a concurrent or crashed-over reader sees
    // either the previous checkpoint or the complete new one.
    const std::string tmp = path + ".tmp";
    {
        FileHandle f(std::fopen(tmp.c_str(), "wb"));
        if (!f)
            SP_FATAL("cannot open checkpoint for writing: %s",
                     tmp.c_str());
        writeHeader(f.get());
        writeParameterTable(f.get(), module);
        writeSections(f.get(), optimizer, trainer_state);
        if (std::fflush(f.get()) != 0)
            SP_FATAL("checkpoint flush failed: %s", tmp.c_str());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        SP_FATAL("cannot rename %s into place", tmp.c_str());
}

}  // namespace

void
saveParameters(const Module &module, const std::string &path)
{
    writeFile(module, path, nullptr, nullptr);
}

bool
loadParameters(Module &module, const std::string &path)
{
    return loadCheckpoint(module, path, nullptr, nullptr);
}

void
saveCheckpoint(const Module &module, const std::string &path,
               const AdamState *optimizer,
               const std::vector<uint8_t> *trainer_state)
{
    writeFile(module, path, optimizer, trainer_state);
}

bool
loadCheckpoint(Module &module, const std::string &path,
               AdamState *optimizer_out,
               std::vector<uint8_t> *trainer_state_out)
{
    FileHandle f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return false;
    if (optimizer_out != nullptr)
        *optimizer_out = AdamState{};
    if (trainer_state_out != nullptr)
        trainer_state_out->clear();

    checkHeader(f.get(), path);
    readParameterTable(f.get(), module, path);
    readSections(f.get(), path, optimizer_out, trainer_state_out);
    return true;
}

}  // namespace sp::nn
