file(REMOVE_RECURSE
  "CMakeFiles/directed_fuzz.dir/directed_fuzz.cpp.o"
  "CMakeFiles/directed_fuzz.dir/directed_fuzz.cpp.o.d"
  "directed_fuzz"
  "directed_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directed_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
