/**
 * @file
 * Dense single-precision GEMM kernels for the autograd engine.
 *
 * Three accumulate variants cover the forward pass and both gradients
 * of `matmul` (all matrices row-major):
 *
 *   gemmAcc        C[n,m] += A[n,k]  * B[k,m]
 *   gemmAccTransB  C[n,k] += G[n,m]  * B[k,m]^T
 *   gemmAccTransA  C[k,m] += A[n,k]^T * G[n,m]
 *
 * gemmAcc packs panels of B transposed into a thread-local scratch
 * buffer so the inner loop is a contiguous dot product, blocked over
 * columns and the reduction dimension to keep the active panel in L1.
 * gemmAccTransB needs no packing at all: with B row-major, both
 * operands of its dot product are already contiguous. gemmAccTransA is
 * an outer-product accumulation whose inner loop streams rows of G.
 *
 * gemmAcc and gemmAccTransB additionally split their output rows
 * across a few threads when the multiply is large enough to amortize
 * thread spawn (the big training-time GEMMs over all graph nodes);
 * small inference-sized multiplies stay strictly single-threaded.
 */
#ifndef SP_NN_GEMM_H
#define SP_NN_GEMM_H

#include <cstdint>

namespace sp::nn {

/** C[n,m] += A[n,k] * B[k,m]. */
void gemmAcc(const float *a, const float *b, float *c, int64_t n,
             int64_t k, int64_t m);

/** C[n,k] += G[n,m] * B[k,m]^T (the dA of matmul's backward). */
void gemmAccTransB(const float *g, const float *b, float *c, int64_t n,
                   int64_t m, int64_t k);

/** C[k,m] += A[n,k]^T * G[n,m] (the dB of matmul's backward). */
void gemmAccTransA(const float *a, const float *g, float *c, int64_t n,
                   int64_t k, int64_t m);

}  // namespace sp::nn

#endif  // SP_NN_GEMM_H
