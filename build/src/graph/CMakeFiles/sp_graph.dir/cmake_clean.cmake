file(REMOVE_RECURSE
  "CMakeFiles/sp_graph.dir/encode.cc.o"
  "CMakeFiles/sp_graph.dir/encode.cc.o.d"
  "CMakeFiles/sp_graph.dir/query_graph.cc.o"
  "CMakeFiles/sp_graph.dir/query_graph.cc.o.d"
  "libsp_graph.a"
  "libsp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
