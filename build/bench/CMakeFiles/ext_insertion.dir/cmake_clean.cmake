file(REMOVE_RECURSE
  "CMakeFiles/ext_insertion.dir/ext_insertion.cc.o"
  "CMakeFiles/ext_insertion.dir/ext_insertion.cc.o.d"
  "ext_insertion"
  "ext_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
