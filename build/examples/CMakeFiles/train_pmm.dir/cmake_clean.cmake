file(REMOVE_RECURSE
  "CMakeFiles/train_pmm.dir/train_pmm.cpp.o"
  "CMakeFiles/train_pmm.dir/train_pmm.cpp.o.d"
  "train_pmm"
  "train_pmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_pmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
