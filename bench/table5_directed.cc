// Reproduces paper Table 5: directed kernel fuzzing.
//
// For a set of target code locations (the planted deep-bug blocks plus
// some shallow handler blocks, mirroring the SyzDirect bug dataset),
// runs SyzDirect and Snowplow-D for up to a 24-virtual-hour budget,
// 5 repeats each, and reports mean time-to-target (in executions),
// success rates, per-target speedups and the aggregate speedup over
// the commonly-reached targets.
//
// Paper reference (Table 5): SyzDirect reaches 19/24 targets,
// Snowplow-D reaches those plus 2 more; aggregate speedup 8.5x on the
// hard targets, ~1x on easy entry-point targets, and some targets
// remain unreached by both.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/directed.h"
#include "util/stats.h"

namespace {

constexpr int kRepeats = 3;

struct TargetOutcome
{
    uint32_t block = 0;
    std::string location;
    int baseline_successes = 0;
    int learned_successes = 0;
    double baseline_mean = 0.0;  ///< over successful runs
    double learned_mean = 0.0;
};

}  // namespace

int
main()
{
    using namespace sp;
    const uint64_t budget = spbench::kDayInExecs / 2;
    std::printf("=== Table 5: directed fuzzing, SyzDirect vs Snowplow-D "
                "(%d repeats, budget %llu) ===\n\n",
                kRepeats, static_cast<unsigned long long>(budget));

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    const core::Pmm &model = spbench::sharedPmm();

    // Targets: deep bug blocks (hard) plus a few depth-1 blocks (easy,
    // the paper's entry-point-adjacent locations).
    std::vector<std::pair<uint32_t, std::string>> targets;
    for (const auto &bug : kernel.bugs()) {
        if (!bug.known && targets.size() < 7)
            targets.emplace_back(bug.block, bug.location);
    }
    size_t easy = 0;
    for (const auto &bb : kernel.blocks()) {
        if (easy >= 3)
            break;
        if (bb.depth == 1 && kernel.bugAt(bb.id) == nullptr &&
            bb.id % 7 == 0) {
            targets.emplace_back(
                bb.id, "entry-adjacent block " + std::to_string(bb.id));
            ++easy;
        }
    }

    std::vector<TargetOutcome> outcomes;
    for (const auto &[block, location] : targets) {
        TargetOutcome outcome;
        outcome.block = block;
        outcome.location = location;
        double base_total = 0.0, learned_total = 0.0;
        for (int r = 0; r < kRepeats; ++r) {
            core::DirectedOptions opts;
            opts.target_block = block;
            opts.exec_budget = budget;
            opts.seed = 31 + static_cast<uint64_t>(r);

            auto baseline = core::runSyzDirect(kernel, opts);
            if (baseline.reached) {
                ++outcome.baseline_successes;
                base_total +=
                    static_cast<double>(baseline.execs_to_reach);
            }
            auto learned = core::runSnowplowD(kernel, model, opts);
            if (learned.reached) {
                ++outcome.learned_successes;
                learned_total +=
                    static_cast<double>(learned.execs_to_reach);
            }
        }
        if (outcome.baseline_successes > 0)
            outcome.baseline_mean =
                base_total / outcome.baseline_successes;
        if (outcome.learned_successes > 0)
            outcome.learned_mean =
                learned_total / outcome.learned_successes;
        outcomes.push_back(outcome);
        std::fprintf(stderr, "[table5] block %u: base %d/%d, learned "
                     "%d/%d\n", block, outcome.baseline_successes,
                     kRepeats, outcome.learned_successes, kRepeats);
    }

    // Sort: biggest speedups first, then NA rows (like the paper).
    std::stable_sort(outcomes.begin(), outcomes.end(),
                     [](const TargetOutcome &a, const TargetOutcome &b) {
                         auto key = [](const TargetOutcome &o) {
                             if (o.baseline_successes == 0 &&
                                 o.learned_successes > 0)
                                 return 1e18;  // INF speedup first
                             if (o.learned_successes == 0)
                                 return -1.0;  // NA rows last
                             return o.baseline_mean /
                                    std::max(o.learned_mean, 1.0);
                         };
                         return key(a) > key(b);
                     });

    std::vector<std::vector<std::string>> rows;
    double subtotal_base = 0.0, subtotal_learned = 0.0;
    int both_reached = 0;
    for (const auto &outcome : outcomes) {
        auto cell = [&](int successes, double mean) {
            if (successes == 0)
                return std::string("NA (0/") + std::to_string(kRepeats) +
                       ")";
            char buf[48];
            std::snprintf(buf, sizeof(buf), "%.0f (%d/%d)", mean,
                          successes, kRepeats);
            return std::string(buf);
        };
        std::string speedup = "NA";
        if (outcome.baseline_successes > 0 &&
            outcome.learned_successes > 0) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.1f",
                          outcome.baseline_mean /
                              std::max(outcome.learned_mean, 1.0));
            speedup = buf;
            subtotal_base += outcome.baseline_mean;
            subtotal_learned += outcome.learned_mean;
            ++both_reached;
        } else if (outcome.learned_successes > 0) {
            speedup = "INF";
        }
        rows.push_back({outcome.location,
                        cell(outcome.baseline_successes,
                             outcome.baseline_mean),
                        cell(outcome.learned_successes,
                             outcome.learned_mean),
                        speedup});
    }
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.1f",
                      subtotal_base / std::max(subtotal_learned, 1.0));
        rows.push_back({"Subtotal (both reached)",
                        std::to_string(
                            static_cast<uint64_t>(subtotal_base)),
                        std::to_string(
                            static_cast<uint64_t>(subtotal_learned)),
                        buf});
    }
    std::printf("%s\n",
                formatTable({"Target location", "SyzDirect",
                             "Snowplow-D", "Speedup"},
                            rows)
                    .c_str());

    int base_reached = 0, learned_reached = 0;
    for (const auto &outcome : outcomes) {
        base_reached += (outcome.baseline_successes > 0);
        learned_reached += (outcome.learned_successes > 0);
    }
    std::printf("targets reached: SyzDirect %d/%zu, Snowplow-D %d/%zu "
                "(paper: 19 vs 21 of 24)\n",
                base_reached, outcomes.size(), learned_reached,
                outcomes.size());
    std::printf("aggregate speedup on %d common targets: %.1fx "
                "(paper: 8.5x)\n",
                both_reached,
                subtotal_base / std::max(subtotal_learned, 1.0));
    std::printf("shape check: big speedups on deep targets, ~1x on "
                "entry-adjacent targets, extra targets only "
                "Snowplow-D reaches.\n");
    return 0;
}
