#include "nn/inference.h"

#include <algorithm>

namespace sp::nn {

namespace {

thread_local TensorArena *tl_active_arena = nullptr;

}  // namespace

std::shared_ptr<TensorNode>
TensorArena::allocate(int64_t rows, int64_t cols, bool zero)
{
    std::shared_ptr<TensorNode> node;
    if (!free_.empty()) {
        node = std::move(free_.back());
        free_.pop_back();
        ++hits_;
    } else {
        node = std::make_shared<TensorNode>();
        ++misses_;
    }
    node->rows = rows;
    node->cols = cols;
    node->requires_grad = false;
    // Both paths reuse the retained capacity; after warm-up neither
    // allocates. resize() leaves reused elements stale — the cheap
    // option for ops that overwrite every element anyway.
    if (zero)
        node->data.assign(static_cast<size_t>(node->numel()), 0.0f);
    else
        node->data.resize(static_cast<size_t>(node->numel()));
    live_.push_back(node);
    return node;
}

void
TensorArena::reclaim()
{
    size_t kept = 0;
    for (auto &node : live_) {
        if (node.use_count() == 1)
            free_.push_back(std::move(node));
        else
            live_[kept++] = std::move(node);
    }
    live_.resize(kept);
}

ArenaStats
TensorArena::stats() const
{
    ArenaStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.pooled = free_.size();
    stats.live = live_.size();
    for (const auto &node : free_)
        stats.bytes += node->data.capacity() * sizeof(float);
    for (const auto &node : live_)
        stats.bytes += node->data.capacity() * sizeof(float);
    return stats;
}

TensorArena &
TensorArena::forThisThread()
{
    thread_local TensorArena arena;
    return arena;
}

InferenceScope::InferenceScope()
    : prev_(tl_active_arena)
{
    if (prev_ == nullptr) {
        TensorArena &arena = TensorArena::forThisThread();
        arena.reclaim();
        tl_active_arena = &arena;
    }
}

InferenceScope::~InferenceScope()
{
    tl_active_arena = prev_;
}

TensorArena *
activeArena()
{
    return tl_active_arena;
}

ArenaStats
threadArenaStats()
{
    return TensorArena::forThisThread().stats();
}

}  // namespace sp::nn
