/**
 * @file
 * Flattening of argument trees into fixed-arity value-slot vectors.
 *
 * The simulated kernel's branch predicates read *slots*: a pre-order
 * flattening of a call's argument tree into uint64 values. The slot
 * order is a function of the SyscallDecl alone (null pointers still emit
 * zeroed slots for their pointee subtree), so slot indices are stable
 * across all values of a call — this is what lets kernel predicates,
 * training labels, and graph argument nodes all refer to "argument k of
 * syscall s" coherently.
 *
 * Slot discipline per type kind:
 *  - Int/Flags/Const/Len/Resource: one slot carrying the value
 *    (resources carry the runtime resource id via a resolver).
 *  - Ptr: one nullness slot (0/1), then the pointee's slots.
 *  - Struct: no slot of its own; field slots in order.
 *  - Buffer: a length slot, then a content-class slot (a small stable
 *    hash bucket of the payload, standing in for data-dependent kernel
 *    branches on buffer contents).
 */
#ifndef SP_PROG_FLATTEN_H
#define SP_PROG_FLATTEN_H

#include <cstdint>
#include <functional>
#include <vector>

#include "prog/value.h"

namespace sp::prog {

/** What a flattened slot represents. */
enum class SlotRole : uint8_t {
    Value,     ///< scalar value of an Int/Flags/Const/Len/Resource leaf
    PtrNull,   ///< pointer nullness (1 = non-null)
    BufLen,    ///< buffer length
    BufClass,  ///< buffer content class (hash bucket)
};

/** Static description of one slot of a decl. */
struct SlotDesc
{
    uint32_t index = 0;            ///< slot position within the call
    TypeRef type;                  ///< owning leaf type
    SlotRole role = SlotRole::Value;
    std::vector<uint16_t> path;    ///< Arg path of the owning node
    bool is_mutable = false;       ///< a mutation can change this slot
};

/** Number of distinct buffer content classes (BufClass slot range). */
constexpr uint64_t kBufferClassCount = 64;

/** Value used for invalid / unresolved resource handles. */
constexpr uint64_t kBadHandle = ~0ULL;

/** Static slot layout of a syscall declaration (cacheable per decl). */
std::vector<SlotDesc> enumerateSlots(const SyscallDecl &decl);

/** Maps a resource argument's result_ref to its runtime id. */
using ResourceResolver = std::function<uint64_t(int32_t result_ref)>;

/**
 * Flatten a call's argument values into slots. `resolve` supplies
 * runtime ids for resource references (use staticResolver for analyses
 * that run without an executor).
 */
std::vector<uint64_t> flattenCall(const Call &call,
                                  const ResourceResolver &resolve);

/**
 * Flatten into a caller-owned buffer (cleared first, capacity kept).
 * The executor hot path reuses one buffer across every call of a
 * program instead of constructing a fresh vector per call.
 */
void flattenCallInto(const Call &call, const ResourceResolver &resolve,
                     std::vector<uint64_t> &out);

/** Resolver mapping any valid ref to its call index and -1 to bad. */
uint64_t staticResolver(int32_t result_ref);

/**
 * Points in a call where the mutation engine can act. One point may
 * cover several slots (a buffer owns both its length and content slot).
 */
struct MutationPoint
{
    std::vector<uint16_t> path;  ///< Arg path of the mutable node
    TypeRef type;                ///< node type
    uint32_t first_slot = 0;     ///< first slot owned by the node
};

/** All mutation points of a call, in flattening order. */
std::vector<MutationPoint> mutationPoints(const Call &call);

/**
 * Total number of mutation points across all calls of a program
 * (the paper's "arguments available for mutation" count, §5.1).
 */
size_t countMutableArgs(const Prog &prog);

}  // namespace sp::prog

#endif  // SP_PROG_FLATTEN_H
