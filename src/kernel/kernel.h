/**
 * @file
 * The simulated kernel: syscall table, handler CFGs, bug sites, and the
 * single-call execution engine with basic-block tracing.
 *
 * This module is the reproduction's substitute for a KCOV-instrumented
 * Linux kernel. Handlers are control-flow graphs whose branch predicates
 * read the calling test's flattened argument slots and the kernel state;
 * executing a call walks the CFG and records every visited block, which
 * the executor turns into edge coverage. Selected deep blocks are bug
 * sites: reaching one crashes the "kernel" with a categorized report.
 */
#ifndef SP_KERNEL_KERNEL_H
#define SP_KERNEL_KERNEL_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/block.h"
#include "kernel/state.h"
#include "prog/types.h"
#include "util/rng.h"

namespace sp::kern {

/** Post-return state transition of a handler. */
struct SyscallEffect
{
    enum class Kind : uint8_t {
        None,
        AllocResource,  ///< allocate `resource_kind`; its id is returned
        FreeResource,   ///< release the resource named by slot `slot`
        SetFlag,        ///< set state flag `flag`
        ClearFlag,      ///< clear state flag `flag`
    };
    Kind kind = Kind::None;
    ResourceKindId resource_kind = 0;
    uint16_t flag = 0;
    uint16_t slot = 0;
};

/** One system-call handler: entry block plus declared effects. */
struct Handler
{
    uint32_t syscall_id = 0;
    uint32_t entry = kNoBlock;
    uint16_t num_slots = 0;
    std::vector<SyscallEffect> effects;
};

/** Manifestation category of a planted bug (paper Table 3). */
enum class BugKind : uint8_t {
    NullDeref,
    PagingFault,
    AssertViolation,
    GeneralProtectionFault,
    OutOfBounds,
    Warning,
    Other,
};

/** Human-readable name of a bug kind. */
const char *bugKindName(BugKind kind);

/** A planted bug: reaching `block` crashes the kernel. */
struct BugSite
{
    uint32_t block = kNoBlock;
    BugKind kind = BugKind::Other;
    std::string description;  ///< e.g. "out-of-bounds write in ata_pio"
    std::string location;     ///< e.g. "drivers/ata/libata-sff.c"
    /**
     * Flaky bugs additionally require a nondeterministic timing bit
     * (standing in for concurrency), so they resist reproduction.
     */
    bool flaky = false;
    /** Present in the continuous-fuzzing known-crash list (Syzbot). */
    bool known = false;
};

/** Outcome of executing a single system call. */
struct CallResult
{
    uint64_t ret = 0;       ///< returned value (resource id if produced)
    bool crashed = false;
    uint32_t bug_index = 0;  ///< valid when crashed
};

/**
 * An immutable simulated kernel. Construct through KernelBuilder
 * (hand-written subsystems) or generateKernel (synthetic bulk).
 */
class Kernel
{
  public:
    /** @name Structure */
    /** @{ */
    const prog::SyscallTable &table() const { return table_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    const BasicBlock &block(uint32_t id) const;
    const std::vector<Handler> &handlers() const { return handlers_; }
    const Handler &handler(uint32_t syscall_id) const;
    const std::vector<BugSite> &bugs() const { return bugs_; }
    uint16_t numFlags() const { return num_flags_; }
    const std::vector<std::string> &resourceKinds() const
    {
        return resource_kinds_;
    }
    ResourceKindId resourceKindId(const std::string &name) const;
    const std::string &version() const { return version_; }
    /** @} */

    /** Fresh state sized for this kernel. */
    KernelState initialState() const { return KernelState(num_flags_); }

    /**
     * Execute one call: walk the handler CFG from its entry, appending
     * every visited block id to `trace`. `noise`, when non-null, is the
     * nondeterministic timing source (enables flaky bug triggering and
     * stray interrupt blocks); pass nullptr for the deterministic
     * data-collection mode (§3.1).
     */
    CallResult executeCall(uint32_t syscall_id,
                           const std::vector<uint64_t> &slots,
                           KernelState &state,
                           std::vector<uint32_t> &trace,
                           Rng *noise = nullptr) const;

    /**
     * Static CFG successors of a block (0, 1 or 2 entries). Used for
     * the one-hop alternative-block analysis (§3.2).
     */
    std::vector<uint32_t> successors(uint32_t block) const;

    /** All directed static edges (from, to). */
    std::vector<std::pair<uint32_t, uint32_t>> staticEdges() const;

    /** Bug site planted at `block`, or nullptr. */
    const BugSite *bugAt(uint32_t block) const;

  private:
    friend class KernelBuilder;

    /** Sentinel of bug_index_at_block_: no bug planted here. */
    static constexpr uint32_t kNoBug = ~0u;

    /**
     * Bug index planted at `block`, or kNoBug. Reads the dense
     * per-block table sealed by KernelBuilder::finish(); the map is
     * the fallback for kernels that were never sealed (empty ones).
     */
    uint32_t
    bugIndexAt(uint32_t block) const
    {
        if (block < bug_index_at_block_.size())
            return bug_index_at_block_[block];
        auto it = bug_at_block_.find(block);
        return it == bug_at_block_.end() ? kNoBug : it->second;
    }

    prog::SyscallTable table_;
    std::vector<BasicBlock> blocks_;
    std::vector<Handler> handlers_;
    std::vector<BugSite> bugs_;
    std::unordered_map<uint32_t, uint32_t> bug_at_block_;
    /** Dense mirror of bug_at_block_ (kNoBug = none), one entry per
     *  block — the CFG walk checks every visited block, and the dense
     *  lookup beats the hash probe on that hot path. */
    std::vector<uint32_t> bug_index_at_block_;
    std::vector<std::string> resource_kinds_;
    uint16_t num_flags_ = 0;
    std::string version_ = "sim";
    /** Blocks that noise can visit spuriously (interrupt handlers). */
    std::vector<uint32_t> interrupt_blocks_;
};

}  // namespace sp::kern

#endif  // SP_KERNEL_KERNEL_H
