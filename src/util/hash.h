/**
 * @file
 * Small non-cryptographic hashing helpers used for coverage signatures,
 * crash deduplication and corpus identity.
 */
#ifndef SP_UTIL_HASH_H
#define SP_UTIL_HASH_H

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace sp {

/**
 * FNV-1a over a byte range. Named distinctly from the string_view
 * overload so that a string literal can never bind its seed as a length.
 */
inline uint64_t
fnv1aBytes(const void *data, size_t len,
           uint64_t seed = 0xcbf29ce484222325ULL)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** FNV-1a over a string view. */
inline uint64_t
fnv1a(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL)
{
    return fnv1aBytes(s.data(), s.size(), seed);
}

/** Mix two 64-bit hashes (boost-style combine with a stronger finalizer). */
inline uint64_t
hashCombine(uint64_t a, uint64_t b)
{
    uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

/** Hash a single integer value. */
inline uint64_t
hashU64(uint64_t v)
{
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    v *= 0xc4ceb9fe1a85ec53ULL;
    v ^= v >> 33;
    return v;
}

}  // namespace sp

#endif  // SP_UTIL_HASH_H
