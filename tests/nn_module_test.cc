// Tests for nn modules and optimizers: parameter registration, shapes,
// checkpoint round-trip, and end-to-end training sanity (a small MLP
// learns a nonlinear function; Adam reduces loss monotonically enough).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "util/rng.h"

namespace sp::nn {
namespace {

TEST(Linear, ShapesAndParameterCount)
{
    Rng rng(1);
    Linear layer(rng, 4, 3, "lin");
    EXPECT_EQ(layer.parameters().size(), 2u);
    EXPECT_EQ(layer.parameterCount(), 4 * 3 + 3);

    Tensor x = Tensor::zeros(5, 4);
    Tensor y = layer.forward(x);
    EXPECT_EQ(y.rows(), 5);
    EXPECT_EQ(y.cols(), 3);
}

TEST(Linear, ZeroInputYieldsBias)
{
    Rng rng(2);
    Linear layer(rng, 2, 2, "lin");
    Tensor x = Tensor::zeros(1, 2);
    Tensor y = layer.forward(x);
    // Bias init is zero, so output must be zero.
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
}

TEST(Embedding, LookupMatchesTableRows)
{
    Rng rng(3);
    Embedding emb(rng, 10, 4, "emb");
    Tensor out = emb.forward({7, 7, 2});
    EXPECT_EQ(out.rows(), 3);
    EXPECT_EQ(out.cols(), 4);
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(out.at(0, j), out.at(1, j));
}

TEST(Mlp, ForwardShape)
{
    Rng rng(4);
    Mlp mlp(rng, {8, 16, 2}, "mlp");
    EXPECT_EQ(mlp.parameters().size(), 4u);
    Tensor x = Tensor::zeros(3, 8);
    Tensor y = mlp.forward(x);
    EXPECT_EQ(y.rows(), 3);
    EXPECT_EQ(y.cols(), 2);
}

TEST(Module, ZeroGradClearsAccumulation)
{
    Rng rng(5);
    Linear layer(rng, 2, 1, "lin");
    Tensor x = Tensor::fromMatrix({1, 2}, 1, 2);
    Tensor loss = sumAll(layer.forward(x));
    loss.backward();
    bool any_nonzero = false;
    for (const auto &p : layer.parameters())
        for (float g : p.tensor.grad())
            any_nonzero |= (g != 0.0f);
    EXPECT_TRUE(any_nonzero);

    layer.zeroGrad();
    for (const auto &p : layer.parameters())
        for (float g : p.tensor.grad())
            EXPECT_EQ(g, 0.0f);
}

// The canonical learning sanity check: regress y = sin-ish nonlinear
// function; Adam must cut the loss by a large factor.
TEST(Training, MlpLearnsNonlinearFunction)
{
    Rng rng(6);
    Mlp mlp(rng, {1, 16, 16, 1}, "mlp");
    Adam opt(mlp.parameters(), 0.01f);

    const int n = 64;
    std::vector<float> xs(n), ys(n);
    for (int i = 0; i < n; ++i) {
        xs[i] = static_cast<float>(i) / n * 4.0f - 2.0f;
        ys[i] = std::sin(2.0f * xs[i]) + 0.5f * xs[i];
    }
    Tensor x = Tensor::fromMatrix(xs, n, 1);

    auto compute_loss = [&] {
        Tensor pred = mlp.forward(x);
        Tensor target = Tensor::fromMatrix(ys, n, 1);
        Tensor diff = sub(pred, target);
        return meanAll(mul(diff, diff));
    };

    float initial = compute_loss().item();
    for (int step = 0; step < 400; ++step) {
        mlp.zeroGrad();
        Tensor loss = compute_loss();
        loss.backward();
        opt.step();
    }
    float final_loss = compute_loss().item();
    EXPECT_LT(final_loss, initial * 0.05f);
    EXPECT_LT(final_loss, 0.05f);
}

TEST(Training, SgdReducesLoss)
{
    Rng rng(7);
    Linear layer(rng, 2, 1, "lin");
    Sgd opt(layer.parameters(), 0.05f);

    Tensor x = Tensor::fromMatrix({1, 0, 0, 1, 1, 1, 2, -1}, 4, 2);
    std::vector<float> target = {1.0f, -1.0f, 0.0f, 3.0f};  // y = x0 - x1

    auto compute_loss = [&] {
        Tensor pred = layer.forward(x);
        Tensor t = Tensor::fromMatrix(target, 4, 1);
        Tensor diff = sub(pred, t);
        return meanAll(mul(diff, diff));
    };

    float initial = compute_loss().item();
    for (int step = 0; step < 200; ++step) {
        layer.zeroGrad();
        compute_loss().backward();
        opt.step();
    }
    EXPECT_LT(compute_loss().item(), initial * 0.01f + 1e-4f);
}

TEST(Training, AdamClipGradNorm)
{
    Rng rng(8);
    Linear layer(rng, 4, 4, "lin");
    Adam opt(layer.parameters(), 0.001f);

    Tensor x = Tensor::fromMatrix(std::vector<float>(4 * 4, 100.0f), 4, 4);
    layer.zeroGrad();
    sumAll(layer.forward(x)).backward();
    float norm = opt.clipGradNorm(1.0f);
    EXPECT_GT(norm, 1.0f);

    double clipped = 0.0;
    for (const auto &p : layer.parameters())
        for (float g : p.tensor.grad())
            clipped += static_cast<double>(g) * g;
    EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-3);
}

TEST(Serialize, RoundTripRestoresParameters)
{
    const std::string path = "/tmp/sp_nn_ckpt_test.bin";
    Rng rng(9);
    Mlp original(rng, {3, 8, 2}, "mlp");
    saveParameters(original, path);

    Rng rng2(999);  // different init
    Mlp restored(rng2, {3, 8, 2}, "mlp");
    ASSERT_TRUE(loadParameters(restored, path));

    for (size_t i = 0; i < original.parameters().size(); ++i) {
        const auto &a = original.parameters()[i].tensor.data();
        const auto &b = restored.parameters()[i].tensor.data();
        ASSERT_EQ(a.size(), b.size());
        for (size_t j = 0; j < a.size(); ++j)
            EXPECT_FLOAT_EQ(a[j], b[j]);
    }
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileReturnsFalse)
{
    Rng rng(10);
    Mlp mlp(rng, {2, 2}, "mlp");
    EXPECT_FALSE(loadParameters(mlp, "/tmp/sp_nn_no_such_file.bin"));
}

}  // namespace
}  // namespace sp::nn
