/**
 * @file
 * The Program Mutation Model (PMM, paper §3.3).
 *
 * PMM consumes an encoded argument-mutation query graph and emits one
 * MUTATE logit per argument node. The architecture has the paper's
 * three learnable components:
 *
 *  - θ_Emb: embedding tables for node kinds, syscall variants, argument
 *    types, argument slots, the target flag — and implicitly the edge
 *    types, which get per-relation message transforms;
 *  - θ_TRANSFORMER's stand-in: a position-aware token encoder over each
 *    kernel block's synthetic assembly window (token embeddings
 *    concatenated by position, projected to the model width). The
 *    paper's BERT-pretrained Transformer reads x86 `cmp` operands; our
 *    blocks' tokens carry the same signal (which argument slot a branch
 *    compares) in a short fixed window, so a projection encoder
 *    suffices at this scale;
 *  - θ_GNN: L rounds of typed message passing (one linear transform per
 *    edge relation and direction, mean-aggregated), with residual
 *    connections and layer normalization, followed by an MLP head on
 *    argument nodes.
 */
#ifndef SP_CORE_PMM_H
#define SP_CORE_PMM_H

#include <memory>

#include "graph/encode.h"
#include "nn/module.h"

namespace sp::core {

/** Model hyperparameters. */
struct PmmConfig
{
    int64_t dim = 40;        ///< node embedding width
    int64_t token_dim = 12;  ///< per-token embedding width
    int gnn_layers = 3;      ///< message-passing rounds
    int64_t head_hidden = 32;
    float dropout = 0.1f;
    /**
     * Use GAT-style edge attention instead of mean aggregation in the
     * message-passing layers (an ablatable architecture variant; the
     * default mirrors the paper's GCN).
     */
    bool use_attention = false;
    uint64_t init_seed = 0x9a11;
};

/** The Program Mutation Model. */
class Pmm : public nn::Module
{
  public:
    explicit Pmm(const PmmConfig &config = {});

    /**
     * Forward pass: logits over the graph's argument nodes (rank-1
     * tensor of length |argument_nodes|). Dropout is active only when
     * `training` with a non-null `dropout_rng`.
     */
    nn::Tensor forward(const graph::EncodedGraph &graph,
                       Rng *dropout_rng = nullptr,
                       bool training = false) const;

    /**
     * Sigmoid probabilities per argument node (inference helper).
     * Runs inside an nn::InferenceScope: no tape, no grad buffers,
     * and (after the calling thread's arena warms up) no tensor heap
     * allocation.
     */
    std::vector<float> predict(const graph::EncodedGraph &graph) const;

    /**
     * Batched predict: packs the graphs into one block-diagonal batch
     * (graph::concatGraphs) so the dense layers run as single GEMMs
     * over the stacked node-feature matrices, then splits the merged
     * output back per graph. Message passing stays exact — edges never
     * cross graph boundaries — so each result matches the unbatched
     * predict() on the same graph. Graphs with no argument nodes (or
     * no nodes) yield empty vectors, mirroring predict().
     */
    std::vector<std::vector<float>>
    predictBatch(const std::vector<const graph::EncodedGraph *> &graphs)
        const;

    /**
     * Hidden states of every node after message passing ([num_nodes,
     * dim]). Extension heads (e.g. call-insertion localization, §6 of
     * the paper) build on these shared representations.
     */
    nn::Tensor nodeStates(const graph::EncodedGraph &graph,
                          Rng *dropout_rng = nullptr,
                          bool training = false) const;

    const PmmConfig &config() const { return config_; }

  private:
    /** Initial node features from the embedding tables. */
    nn::Tensor embedNodes(const graph::EncodedGraph &graph) const;

    PmmConfig config_;
    std::unique_ptr<nn::Embedding> node_kind_emb_;
    std::unique_ptr<nn::Embedding> syscall_emb_;
    std::unique_ptr<nn::Embedding> arg_type_emb_;
    std::unique_ptr<nn::Embedding> arg_slot_emb_;
    std::unique_ptr<nn::Embedding> target_emb_;
    std::unique_ptr<nn::Embedding> token_emb_;
    std::unique_ptr<nn::Linear> token_proj_;

    struct GnnLayer
    {
        std::vector<std::unique_ptr<nn::Linear>> relation;  ///< 2*kinds
        /** Per-relation attention scorers (only with use_attention). */
        std::vector<std::unique_ptr<nn::Linear>> attention;
        std::unique_ptr<nn::Linear> self;
    };
    std::vector<GnnLayer> layers_;
    std::unique_ptr<nn::Mlp> head_;
};

}  // namespace sp::core

#endif  // SP_CORE_PMM_H
