// Tests for the pipeline tracer, status server and flight recorder:
// span open/close pairing across a 4-worker campaign, trace-id
// stability across the async localizer -> inference service hand-off,
// ring-buffer wraparound, trace_event JSON export shape, the /metrics
// and /status endpoints, campaign-scoped gauge lifetime, and the
// SP_PANIC / stall-watchdog flight-record dumps.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/snowplow.h"
#include "fuzz/campaign.h"
#include "kernel/subsystems.h"
#include "obs/metrics.h"
#include "obs/statusd.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace sp {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

fuzz::CampaignOptions
smallCampaign(size_t workers, uint64_t seed)
{
    fuzz::CampaignOptions opts;
    opts.workers = workers;
    opts.fuzz.exec_budget = 1500;
    opts.fuzz.seed = seed;
    opts.fuzz.seed_corpus_size = 20;
    opts.fuzz.checkpoint_every = 250;
    return opts;
}

std::string
tempDir(const char *tag)
{
    std::string tmpl = std::string("/tmp/sp_trace_") + tag + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char *dir = mkdtemp(buf.data());
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp";
}

std::vector<std::string>
flightRecordsIn(const std::string &dir)
{
    std::vector<std::string> out;
    DIR *handle = opendir(dir.c_str());
    if (handle == nullptr)
        return out;
    while (dirent *entry = readdir(handle)) {
        const std::string name = entry->d_name;
        if (name.rfind("flightrec-", 0) == 0)
            out.push_back(dir + "/" + name);
    }
    closedir(handle);
    return out;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Minimal HTTP GET against 127.0.0.1:port; returns the raw reply. */
std::string
httpGet(uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const std::string request =
        "GET " + path + " HTTP/1.0\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return reply;
}

/** Spans of one kind across all rings. */
std::vector<obs::Span>
spansOfKind(const std::vector<obs::RingSnapshot> &rings,
            obs::SpanKind kind)
{
    std::vector<obs::Span> out;
    for (const auto &ring : rings)
        for (const auto &span : ring.spans)
            if (span.kind == kind)
                out.push_back(span);
    return out;
}

class TracerTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        obs::shutdownTracer();
        // Drop any claim a test leaked (release clamps at zero, so
        // this never disables a claim held elsewhere).
        obs::releaseIntrospection();
        obs::setStatusProvider(nullptr);
    }
};

TEST_F(TracerTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(obs::traceEnabled());
    const auto before = obs::snapshotRings();
    size_t before_total = 0;
    for (const auto &ring : before)
        before_total += ring.spans.size();
    {
        obs::TraceSpan span(obs::SpanKind::Execute, 7);
    }
    const auto after = obs::snapshotRings();
    size_t after_total = 0;
    for (const auto &ring : after)
        after_total += ring.spans.size();
    EXPECT_EQ(before_total, after_total);
    EXPECT_EQ(obs::beginTrace(), 0u);
}

TEST_F(TracerTest, SamplingKeepsOneInN)
{
    obs::TraceOptions opts;
    opts.sample = 4;
    obs::installTracer(opts);
    size_t kept = 0;
    for (int i = 0; i < 16; ++i)
        kept += obs::beginTrace() != 0 ? 1 : 0;
    EXPECT_EQ(kept, 4u);
}

TEST_F(TracerTest, TraceScopeSavesAndRestores)
{
    obs::installTracer({});
    EXPECT_EQ(obs::currentTraceId(), 0u);
    {
        obs::TraceScope outer(11);
        EXPECT_EQ(obs::currentTraceId(), 11u);
        {
            obs::TraceScope inner(22);
            EXPECT_EQ(obs::currentTraceId(), 22u);
        }
        EXPECT_EQ(obs::currentTraceId(), 11u);
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
}

TEST_F(TracerTest, RingWrapsAroundKeepingNewestSpans)
{
    obs::TraceOptions opts;
    opts.ring_capacity = 8;
    obs::installTracer(opts);
    // A fresh thread gets a fresh (or recycled-and-reset) ring sized
    // to the tracer's capacity.
    std::thread([&] {
        obs::setRingLabel("wraparound");
        for (uint64_t i = 1; i <= 20; ++i)
            obs::recordSpan(obs::SpanKind::Execute, 1, i * 100, 10, i);
    }).join();
    const auto rings = obs::snapshotRings();
    const obs::RingSnapshot *ring = nullptr;
    for (const auto &candidate : rings)
        if (candidate.label == "wraparound")
            ring = &candidate;
    ASSERT_NE(ring, nullptr);
    ASSERT_EQ(ring->spans.size(), 8u);
    // Oldest retained span is #13, newest #20, in order.
    for (size_t i = 0; i < 8; ++i)
        EXPECT_EQ(ring->spans[i].arg, 13 + i) << i;
}

TEST_F(TracerTest, FourWorkerCampaignTracesEveryStage)
{
    // Warm the monotonic time base so the first recorded span lands
    // at a nonzero offset (monotonicMicros() is zero at first call).
    (void)monotonicMicros();
    const std::string dir = tempDir("campaign");
    const std::string trace_path = dir + "/trace.json";
    obs::TraceOptions opts;
    opts.path = trace_path;
    opts.sample = 1;
    opts.ring_capacity = 1 << 14;
    obs::installTracer(opts);

    auto engine = core::makeSyzkallerCampaign(testKernel(),
                                              smallCampaign(4, 11));
    engine->run();

    const auto rings = obs::snapshotRings();
    // Every pipeline stage shows up, and every recorded span is a
    // closed one with a real timestamp (open spans are never recorded,
    // which is what makes open/close pairing structural).
    const obs::SpanKind stages[] = {
        obs::SpanKind::Schedule,    obs::SpanKind::Localize,
        obs::SpanKind::Instantiate, obs::SpanKind::Execute,
        obs::SpanKind::Triage,      obs::SpanKind::Checkpoint,
        obs::SpanKind::Seed,
    };
    for (const auto kind : stages) {
        const auto spans = spansOfKind(rings, kind);
        EXPECT_FALSE(spans.empty()) << obs::spanKindName(kind);
        for (const auto &span : spans) {
            EXPECT_NE(span.trace_id, 0u);
            EXPECT_GT(span.ts_us, 0u);
        }
    }
    // All four workers recorded (worker 0 runs on the main thread).
    // Guaranteed only with real parallelism: on a starved machine the
    // main thread can exhaust this small budget before the spawned
    // workers run their first round, so when fewer than 4 CPUs are
    // available only require that the campaign traced at all.
    std::set<uint32_t> worker_rings;
    for (const auto &span : spansOfKind(rings, obs::SpanKind::Schedule))
        worker_rings.insert(span.ring);
    if (std::thread::hardware_concurrency() >= 4)
        EXPECT_GE(worker_rings.size(), 4u);
    else
        EXPECT_GE(worker_rings.size(), 1u);

    EXPECT_GT(obs::exportedSpanCount(), 0u);
    obs::shutdownTracer();

    // The exported file is a trace_event JSON array of complete
    // events plus thread_name metadata.
    const std::string json = readFile(trace_path);
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');  // trailing newline
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"schedule\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
}

TEST_F(TracerTest, TraceIdSurvivesAsyncLocalizerHandOff)
{
    obs::TraceOptions opts;
    opts.sample = 1;
    opts.ring_capacity = 1 << 14;
    obs::installTracer(opts);

    core::Pmm model;
    core::InferenceService service(model, 2);
    auto engine = core::makeAsyncSnowplowCampaign(
        testKernel(), service, smallCampaign(4, 13));
    engine->run();
    engine.reset();  // drain outstanding futures

    const auto rings = obs::snapshotRings();
    const auto queue_spans =
        spansOfKind(rings, obs::SpanKind::InferQueue);
    const auto batch_spans =
        spansOfKind(rings, obs::SpanKind::InferBatch);
    ASSERT_FALSE(queue_spans.empty());
    ASSERT_FALSE(batch_spans.empty());

    // Every inference-side span carries a trace id minted by a worker
    // round — the id crossed the submit() thread boundary intact.
    std::set<uint64_t> round_ids;
    for (const auto &span :
         spansOfKind(rings, obs::SpanKind::Schedule))
        round_ids.insert(span.trace_id);
    for (const auto &span : spansOfKind(rings, obs::SpanKind::Seed))
        round_ids.insert(span.trace_id);
    for (const auto &span : queue_spans) {
        EXPECT_NE(span.trace_id, 0u);
        EXPECT_TRUE(round_ids.count(span.trace_id))
            << "orphan trace id " << span.trace_id;
    }
    for (const auto &span : batch_spans)
        EXPECT_NE(span.trace_id, 0u);

    // And the inference rings are labeled as such.
    bool infer_ring_seen = false;
    for (const auto &ring : rings)
        infer_ring_seen |= ring.label.rfind("infer", 0) == 0;
    EXPECT_TRUE(infer_ring_seen);
}

TEST_F(TracerTest, StatusServerServesMetricsAndStatus)
{
    obs::Registry::global().counter("trace_test.requests").inc(3);
    obs::statusBoard().reset(2);
    obs::statusBoard().setStage(0, obs::WorkerStage::Execute, 42);
    obs::setStatusProvider(
        [] { return std::string("{\"corpus_size\":7}"); });

    obs::StatusServer server(0);
    ASSERT_NE(server.port(), 0u);

    const std::string metrics = httpGet(server.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics.find("# TYPE sp_trace_test_requests counter"),
              std::string::npos);
    EXPECT_NE(metrics.find("sp_trace_test_requests 3"),
              std::string::npos);

    const std::string status = httpGet(server.port(), "/status");
    EXPECT_NE(status.find("200 OK"), std::string::npos);
    EXPECT_NE(status.find("\"stage\":\"execute\""), std::string::npos);
    EXPECT_NE(status.find("\"slot\":42"), std::string::npos);
    EXPECT_NE(status.find("\"corpus_size\":7"), std::string::npos);

    const std::string health = httpGet(server.port(), "/healthz");
    EXPECT_NE(health.find("ok"), std::string::npos);

    const std::string missing = httpGet(server.port(), "/nope");
    EXPECT_NE(missing.find("404"), std::string::npos);
    EXPECT_GE(server.requestsServed(), 4u);
}

TEST_F(TracerTest, StatusJsonEmbedsCampaignStateDuringRun)
{
    // Scrape /status-equivalent JSON while a campaign is live: the
    // provider must expose corpus/ledger/crash state.
    obs::claimIntrospection();
    std::atomic<bool> saw_campaign{false};
    std::thread scraper([&] {
        for (int i = 0; i < 2000 && !saw_campaign.load(); ++i) {
            const std::string status = obs::statusJson();
            if (status.find("\"ledger_watermark\"") !=
                    std::string::npos &&
                status.find("\"corpus_size\"") != std::string::npos) {
                saw_campaign.store(true);
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });
    auto engine = core::makeSyzkallerCampaign(testKernel(),
                                              smallCampaign(2, 17));
    engine->run();
    scraper.join();
    EXPECT_TRUE(saw_campaign.load());
    // After run() the provider is a frozen final snapshot, not a
    // dangling reference into the finished run's stack.
    const std::string after = obs::statusJson();
    EXPECT_NE(after.find("\"ledger_watermark\":1500"),
              std::string::npos);
}

TEST_F(TracerTest, WorkerGaugesDoNotLingerAcrossCampaigns)
{
    auto &reg = obs::Registry::global();
    auto engine4 = core::makeSyzkallerCampaign(testKernel(),
                                               smallCampaign(4, 19));
    engine4->run();
    EXPECT_NE(reg.snapshotJson().find("fuzz.worker_busy_ratio.w3"),
              std::string::npos);

    auto engine2 = core::makeSyzkallerCampaign(testKernel(),
                                               smallCampaign(2, 19));
    // Plant a stale learned-localizer ratio from "a previous run".
    reg.gauge("snowplow.cache_hit_ratio").set(0.77);
    engine2->run();
    const std::string snapshot = reg.snapshotJson();
    EXPECT_NE(snapshot.find("fuzz.worker_busy_ratio.w1"),
              std::string::npos);
    EXPECT_EQ(snapshot.find("fuzz.worker_busy_ratio.w2"),
              std::string::npos);
    EXPECT_EQ(snapshot.find("fuzz.worker_busy_ratio.w3"),
              std::string::npos);
    // The learned-localizer cache ratio is campaign-scoped too, but
    // the localizer hot path caches a handle to it, so campaigns zero
    // it in place (resetGaugesWithPrefix) instead of unregistering: a
    // run that never touches the cache serves 0, not a stale ratio.
    EXPECT_EQ(snapshot.find("\"snowplow.cache_hit_ratio\":0.77"),
              std::string::npos);
    EXPECT_NE(snapshot.find("\"snowplow.cache_hit_ratio\":0"),
              std::string::npos);
}

TEST_F(TracerTest, IntrospectionClaimsAreReferenceCounted)
{
    ASSERT_FALSE(obs::introspectionEnabled());
    obs::installTracer({});  // tracer takes a claim
    EXPECT_TRUE(obs::introspectionEnabled());
    {
        obs::StatusServer server(0);  // second claim
        EXPECT_TRUE(obs::introspectionEnabled());
    }
    // Tearing the server down must not blind the tracer (its stall
    // watchdog still reads the board).
    EXPECT_TRUE(obs::introspectionEnabled());
    obs::shutdownTracer();
    EXPECT_FALSE(obs::introspectionEnabled());
    // An unmatched release clamps at zero instead of going negative.
    obs::releaseIntrospection();
    obs::claimIntrospection();
    EXPECT_TRUE(obs::introspectionEnabled());
    obs::releaseIntrospection();
    EXPECT_FALSE(obs::introspectionEnabled());
}

TEST_F(TracerTest, ManualFlightRecordDumpsRingsAndRegistry)
{
    const std::string dir = tempDir("manual");
    obs::TraceOptions opts;
    opts.flightrec_dir = dir;
    obs::installTracer(opts);
    obs::statusBoard().reset(1);
    obs::statusBoard().setStage(0, obs::WorkerStage::Localize, 9);
    obs::recordSpan(obs::SpanKind::Execute, 5, 1000, 50, 9);

    const std::string path = obs::flightRecordNow("unit test");
    ASSERT_FALSE(path.empty());
    const std::string record = readFile(path);
    EXPECT_NE(record.find("\"reason\":\"unit test\""),
              std::string::npos);
    EXPECT_NE(record.find("\"rings\":["), std::string::npos);
    EXPECT_NE(record.find("\"registry\":"), std::string::npos);
    EXPECT_NE(record.find("\"stage\":\"localize\""), std::string::npos);
}

TEST_F(TracerTest, StallWatchdogDumpsFlightRecord)
{
    const std::string dir = tempDir("stall");
    obs::TraceOptions opts;
    opts.flightrec_dir = dir;
    opts.stall_timeout_us = 20 * 1000;  // 20 ms
    obs::installTracer(opts);
    obs::statusBoard().reset(1);
    // A worker "stuck" in Execute longer than the timeout.
    obs::statusBoard().setStage(0, obs::WorkerStage::Execute, 77);
    std::vector<std::string> records;
    for (int i = 0; i < 200; ++i) {
        records = flightRecordsIn(dir);
        if (!records.empty())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_FALSE(records.empty());
    const std::string record = readFile(records[0]);
    EXPECT_NE(record.find("stalled in execute"), std::string::npos);
    EXPECT_NE(record.find("slot 77"), std::string::npos);
}

using TracerDeathTest = TracerTest;

TEST_F(TracerDeathTest, PanicDumpsFlightRecord)
{
    const std::string dir = tempDir("panic");
    EXPECT_DEATH(
        {
            obs::TraceOptions opts;
            opts.flightrec_dir = dir;
            obs::installTracer(opts);
            obs::recordSpan(obs::SpanKind::Triage, 3, 500, 25, 1);
            SP_PANIC("forced panic for the flight recorder");
        },
        "forced panic");
    const auto records = flightRecordsIn(dir);
    ASSERT_FALSE(records.empty());
    const std::string record = readFile(records[0]);
    EXPECT_NE(record.find("forced panic for the flight recorder"),
              std::string::npos);
    EXPECT_NE(record.find("\"registry\":"), std::string::npos);
}

}  // namespace
}  // namespace sp
