// Tests for the simulated kernel: predicate evaluation, state/resource
// semantics, builder invariants, handler execution, the hand-written
// subsystems (including the deep SCSI/ATA bug path), and the synthetic
// generator's determinism and version-evolution guarantees.

#include <gtest/gtest.h>

#include <set>

#include "kernel/builder.h"
#include "kernel/kernel_gen.h"
#include "kernel/subsystems.h"
#include "prog/flatten.h"

namespace sp::kern {
namespace {

TEST(Cond, EvaluatesEveryKind)
{
    KernelState state(2);
    std::vector<uint64_t> slots = {5, 0x6, 42};

    Cond cond;
    cond.kind = CondKind::Always;
    EXPECT_TRUE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgEq;
    cond.slot = 0;
    cond.a = 5;
    EXPECT_TRUE(evalCond(cond, slots, state));
    cond.a = 6;
    EXPECT_FALSE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgNeq;
    EXPECT_TRUE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgLt;
    cond.slot = 2;
    cond.a = 43;
    EXPECT_TRUE(evalCond(cond, slots, state));
    cond.a = 42;
    EXPECT_FALSE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgGe;
    EXPECT_TRUE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgMaskAll;
    cond.slot = 1;
    cond.a = 0x2;
    EXPECT_TRUE(evalCond(cond, slots, state));
    cond.a = 0x9;
    EXPECT_FALSE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgMaskNone;
    cond.a = 0x9;
    EXPECT_TRUE(evalCond(cond, slots, state));
    cond.a = 0x2;
    EXPECT_FALSE(evalCond(cond, slots, state));

    cond.kind = CondKind::ArgInRange;
    cond.slot = 2;
    cond.a = 40;
    cond.b = 44;
    EXPECT_TRUE(evalCond(cond, slots, state));
    cond.b = 41;
    EXPECT_FALSE(evalCond(cond, slots, state));

    cond.kind = CondKind::StateFlagSet;
    cond.flag = 1;
    EXPECT_FALSE(evalCond(cond, slots, state));
    state.setFlag(1, true);
    EXPECT_TRUE(evalCond(cond, slots, state));

    cond.kind = CondKind::ResourceAlive;
    cond.slot = 0;
    cond.flag = 3;
    EXPECT_FALSE(evalCond(cond, slots, state));
    // Allocate resources until id 5 exists with kind 3.
    for (int i = 0; i < 5; ++i)
        state.allocResource(3);
    EXPECT_TRUE(evalCond(cond, slots, state));
}

TEST(Cond, DescribeMentionsSlot)
{
    Cond cond;
    cond.kind = CondKind::ArgEq;
    cond.slot = 7;
    cond.a = 0x85;
    auto text = cond.describe();
    EXPECT_NE(text.find("arg[7]"), std::string::npos);
    EXPECT_NE(text.find("0x85"), std::string::npos);
}

TEST(State, ResourceLifecycle)
{
    KernelState state(0);
    uint64_t id = state.allocResource(2);
    EXPECT_EQ(id, 1u);  // ids are 1-based
    EXPECT_TRUE(state.alive(id));
    EXPECT_TRUE(state.aliveOfKind(id, 2));
    EXPECT_FALSE(state.aliveOfKind(id, 3));
    EXPECT_EQ(state.kindOf(id), 2);
    EXPECT_EQ(state.liveCount(), 1u);
    state.release(id);
    EXPECT_FALSE(state.alive(id));
    EXPECT_EQ(state.liveCount(), 0u);
    // Invalid handles never alias resources.
    EXPECT_FALSE(state.alive(0));
    EXPECT_FALSE(state.alive(prog::kBadHandle));
}

TEST(State, SnapshotIsolation)
{
    KernelState state(1);
    state.allocResource(0);
    KernelState snap = state.snapshot();
    state.setFlag(0, true);
    state.allocResource(1);
    EXPECT_FALSE(snap.flag(0));
    EXPECT_EQ(snap.liveCount(), 1u);
    EXPECT_EQ(state.liveCount(), 2u);
}

TEST(Tokens, BranchTokensNameTheSlot)
{
    Cond cond;
    cond.kind = CondKind::ArgEq;
    cond.slot = 9;
    cond.a = 0x40;
    auto tokens = branchTokens(cond);
    bool found = false;
    for (uint16_t t : tokens)
        found |= (t == token::slotToken(9));
    EXPECT_TRUE(found);
    for (uint16_t t : tokens)
        EXPECT_LT(t, token::kVocabSize);
}

TEST(Tokens, BodyTokensDeterministic)
{
    EXPECT_EQ(bodyTokens(12), bodyTokens(12));
    EXPECT_NE(bodyTokens(12), bodyTokens(13));
}

TEST(Builder, MinimalKernelExecutes)
{
    KernelBuilder builder("test");
    prog::SyscallDecl decl;
    decl.name = "nop";
    decl.args.push_back(prog::intType("x", 32, 0, 10));
    builder.beginHandler(std::move(decl));
    const uint32_t a = builder.addBlock();
    const uint32_t b = builder.addBlock();
    const uint32_t c = builder.addBlock();
    Cond cond;
    cond.kind = CondKind::ArgEq;
    cond.slot = 0;
    cond.a = 3;
    builder.setBranch(a, cond, b, c);
    builder.setReturn(b);
    builder.setReturn(c);
    Kernel kernel = builder.finish();

    auto state = kernel.initialState();
    std::vector<uint32_t> trace;
    auto result = kernel.executeCall(0, {3}, state, trace);
    EXPECT_FALSE(result.crashed);
    EXPECT_EQ(trace, (std::vector<uint32_t>{a, b}));

    trace.clear();
    kernel.executeCall(0, {4}, state, trace);
    EXPECT_EQ(trace, (std::vector<uint32_t>{a, c}));
}

TEST(Builder, SuccessorsReflectTerminators)
{
    KernelBuilder builder("test");
    prog::SyscallDecl decl;
    decl.name = "nop";
    decl.args.push_back(prog::intType("x", 32, 0, 10));
    builder.beginHandler(std::move(decl));
    const uint32_t a = builder.addBlock();
    const uint32_t b = builder.addBlock();
    const uint32_t c = builder.addBlock();
    Cond cond;
    cond.kind = CondKind::ArgEq;
    cond.slot = 0;
    cond.a = 1;
    builder.setBranch(a, cond, b, c);
    builder.setFallthrough(b, c);
    builder.setReturn(c);
    Kernel kernel = builder.finish();

    auto succ_a = kernel.successors(a);
    EXPECT_EQ(succ_a.size(), 2u);
    EXPECT_EQ(kernel.successors(b), std::vector<uint32_t>{c});
    EXPECT_TRUE(kernel.successors(c).empty());
    EXPECT_EQ(kernel.staticEdges().size(), 3u);
}

class BaseKernelTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        KernelGenParams params;
        params.seed = 7;
        kernel_ = new Kernel(buildBaseKernel(params));
    }

    static void
    TearDownTestSuite()
    {
        delete kernel_;
        kernel_ = nullptr;
    }

    // Build slots for a decl from a path->value map applied over
    // defaults.
    static std::vector<uint64_t>
    slotsFor(const prog::SyscallDecl &decl,
             const std::vector<std::pair<uint16_t, uint64_t>> &overrides)
    {
        prog::Call call;
        call.decl = &decl;
        call.args = prog::defaultArgs(decl);
        prog::fixupLengths(call);
        auto slots = prog::flattenCall(call, prog::staticResolver);
        for (auto [slot, value] : overrides)
            slots[slot] = value;
        return slots;
    }

    static Kernel *kernel_;
};

Kernel *BaseKernelTest::kernel_ = nullptr;

TEST_F(BaseKernelTest, HasSubsystemsAndBulk)
{
    EXPECT_NE(kernel_->table().find("open$file"), nullptr);
    EXPECT_NE(kernel_->table().find("ioctl$scsi"), nullptr);
    EXPECT_NE(kernel_->table().find("sendmsg$inet"), nullptr);
    EXPECT_NE(kernel_->table().find("timer_tick"), nullptr);
    EXPECT_GT(kernel_->table().decls.size(), 15u);
    EXPECT_GT(kernel_->blocks().size(), 300u);
    EXPECT_GT(kernel_->bugs().size(), 10u);
}

TEST_F(BaseKernelTest, ReadNeedsLiveFd)
{
    const auto *read_decl = kernel_->table().find("read");
    ASSERT_NE(read_decl, nullptr);
    auto state = kernel_->initialState();

    // Dead fd: the handler must take the EBADF path (short trace).
    std::vector<uint32_t> dead_trace;
    kernel_->executeCall(read_decl->id,
                         slotsFor(*read_decl, {}), state, dead_trace);

    // Open first, then read with the returned fd: longer path.
    const auto *open_decl = kernel_->table().find("open$file");
    std::vector<uint32_t> open_trace;
    auto open_result = kernel_->executeCall(
        open_decl->id, slotsFor(*open_decl, {}), state, open_trace);
    EXPECT_GT(open_result.ret, 0u);

    std::vector<uint32_t> live_trace;
    kernel_->executeCall(read_decl->id,
                         slotsFor(*read_decl, {{0, open_result.ret}}),
                         state, live_trace);
    EXPECT_NE(dead_trace, live_trace);
    EXPECT_GT(live_trace.size(), dead_trace.size());
}

TEST_F(BaseKernelTest, ScsiAtaBugNeedsExactArguments)
{
    const auto *open_decl = kernel_->table().find("open$scsi");
    const auto *ioctl_decl = kernel_->table().find("ioctl$scsi");
    ASSERT_NE(open_decl, nullptr);
    ASSERT_NE(ioctl_decl, nullptr);

    auto state = kernel_->initialState();
    std::vector<uint32_t> trace;
    auto open_result = kernel_->executeCall(
        open_decl->id, slotsFor(*open_decl, {}), state, trace);
    ASSERT_GT(open_result.ret, 0u);

    const auto slots_decl = prog::enumerateSlots(*ioctl_decl);
    // Layout: 0=fd 1=cmd 2=req_null 3=proto 4=ata_cmd 5=protocol
    // 6=data_len 7..8=data buffer 9=buf_len const... verify via count.
    ASSERT_GE(slots_decl.size(), 7u);

    auto exact = slotsFor(*ioctl_decl,
                          {{0, open_result.ret},
                           {1, kScsiIoctlSendCommand},
                           {2, 1},
                           {3, kScsiProtoAta16},
                           {4, kAtaCmdNop},
                           {5, kAtaProtPio},
                           {6, kAtaMaxDataLen + 1}});
    trace.clear();
    auto crash = kernel_->executeCall(ioctl_decl->id, exact, state, trace);
    ASSERT_TRUE(crash.crashed);
    EXPECT_EQ(kernel_->bugs()[crash.bug_index].kind,
              BugKind::OutOfBounds);

    // Perturbing any one of the guarding arguments avoids *this* bug
    // (the synthetic-bulk generator may plant other bugs on the
    // neighboring paths, which is fine).
    const uint32_t ata_bug_block = kernel_->bugs()[crash.bug_index].block;
    for (uint16_t slot : {uint16_t{1}, uint16_t{3}, uint16_t{4},
                          uint16_t{5}}) {
        auto near_miss = exact;
        near_miss[slot] ^= 0x1000;
        trace.clear();
        auto ok = kernel_->executeCall(ioctl_decl->id, near_miss, state,
                                       trace);
        if (ok.crashed) {
            EXPECT_NE(kernel_->bugs()[ok.bug_index].block,
                      ata_bug_block)
                << "slot " << slot;
        }
    }
    auto len_ok = exact;
    len_ok[6] = kAtaMaxDataLen;  // boundary: exactly the buffer size
    trace.clear();
    auto boundary =
        kernel_->executeCall(ioctl_decl->id, len_ok, state, trace);
    if (boundary.crashed) {
        EXPECT_NE(kernel_->bugs()[boundary.bug_index].block,
                  ata_bug_block);
    }
}

TEST_F(BaseKernelTest, ListenDependsOnBindStateFlag)
{
    const auto *socket_decl = kernel_->table().find("socket");
    const auto *bind_decl = kernel_->table().find("bind");
    const auto *listen_decl = kernel_->table().find("listen");

    auto state = kernel_->initialState();
    std::vector<uint32_t> trace;
    auto sock = kernel_->executeCall(
        socket_decl->id, slotsFor(*socket_decl, {}), state, trace);

    // listen before bind.
    std::vector<uint32_t> before;
    kernel_->executeCall(listen_decl->id,
                         slotsFor(*listen_decl, {{0, sock.ret}}), state,
                         before);
    // bind (addr ptr non-null by default), then listen again.
    trace.clear();
    kernel_->executeCall(bind_decl->id,
                         slotsFor(*bind_decl, {{0, sock.ret}}), state,
                         trace);
    std::vector<uint32_t> after;
    kernel_->executeCall(listen_decl->id,
                         slotsFor(*listen_decl, {{0, sock.ret}}), state,
                         after);
    EXPECT_NE(before, after);
}

TEST_F(BaseKernelTest, CloseReleasesFd)
{
    const auto *open_decl = kernel_->table().find("open$file");
    const auto *close_decl = kernel_->table().find("close$file");
    auto state = kernel_->initialState();
    std::vector<uint32_t> trace;
    auto fd = kernel_->executeCall(open_decl->id,
                                   slotsFor(*open_decl, {}), state, trace);
    EXPECT_TRUE(state.alive(fd.ret));
    trace.clear();
    kernel_->executeCall(close_decl->id,
                         slotsFor(*close_decl, {{0, fd.ret}}), state,
                         trace);
    EXPECT_FALSE(state.alive(fd.ret));
}

TEST(KernelGen, DeterministicForSeed)
{
    KernelGenParams params;
    params.seed = 99;
    Kernel a = generateKernel(params);
    Kernel b = generateKernel(params);
    ASSERT_EQ(a.blocks().size(), b.blocks().size());
    for (size_t i = 0; i < a.blocks().size(); ++i) {
        EXPECT_EQ(a.blocks()[i].tokens, b.blocks()[i].tokens);
        EXPECT_EQ(a.blocks()[i].taken, b.blocks()[i].taken);
    }
    ASSERT_EQ(a.table().decls.size(), b.table().decls.size());
    for (size_t i = 0; i < a.table().decls.size(); ++i)
        EXPECT_EQ(a.table().decls[i].name, b.table().decls[i].name);
}

TEST(KernelGen, DifferentSeedsDiffer)
{
    KernelGenParams pa, pb;
    pa.seed = 1;
    pb.seed = 2;
    Kernel a = generateKernel(pa);
    Kernel b = generateKernel(pb);
    EXPECT_NE(a.blocks().size(), b.blocks().size());
}

TEST(KernelGen, EvolutionPreservesBaseStructure)
{
    KernelGenParams base;
    base.seed = 42;
    KernelGenParams evolved = base;
    evolved.evolution = 2;
    evolved.version = "6.10";

    Kernel v68 = generateKernel(base);
    Kernel v610 = generateKernel(evolved);

    // The evolved kernel grows blocks and syscalls.
    EXPECT_GT(v610.blocks().size(), v68.blocks().size());
    EXPECT_EQ(v610.table().decls.size(),
              v68.table().decls.size() + 2);

    // Every base decl survives with the same name and slot layout.
    for (size_t i = 0; i < v68.table().decls.size(); ++i) {
        EXPECT_EQ(v68.table().decls[i].name,
                  v610.table().decls[i].name);
        EXPECT_EQ(prog::slotCount(v68.table().decls[i]),
                  prog::slotCount(v610.table().decls[i]));
    }
    EXPECT_EQ(v610.version(), "6.10");
}

TEST(KernelGen, BugsArePlantedDeep)
{
    KernelGenParams params;
    params.seed = 5;
    Kernel kernel = generateKernel(params);
    ASSERT_GT(kernel.bugs().size(), 0u);
    int known = 0;
    for (const auto &bug : kernel.bugs()) {
        const auto &bb = kernel.block(bug.block);
        if (bug.known) {
            ++known;
            EXPECT_EQ(bb.depth, 1);
        } else {
            EXPECT_GE(bb.depth, 2);
        }
        EXPECT_EQ(kernel.bugAt(bug.block), &bug);
    }
    EXPECT_GT(known, 0);
}

TEST(KernelGen, HandlersAreWellFormedDags)
{
    // finish() validates acyclicity; also check every handler entry
    // reaches a Return within the block budget by executing defaults.
    KernelGenParams params;
    params.seed = 31;
    Kernel kernel = generateKernel(params);
    auto state = kernel.initialState();
    for (const auto &decl : kernel.table().decls) {
        prog::Call call;
        call.decl = &decl;
        call.args = prog::defaultArgs(decl);
        prog::fixupLengths(call);
        auto slots = prog::flattenCall(call, prog::staticResolver);
        std::vector<uint32_t> trace;
        kernel.executeCall(decl.id, slots, state, trace);
        EXPECT_GT(trace.size(), 0u);
        EXPECT_LT(trace.size(), kernel.blocks().size());
    }
}

TEST(KernelGen, NoisyModeCanVisitInterruptBlocks)
{
    KernelGenParams params;
    params.seed = 8;
    Kernel kernel = generateKernel(params);
    const auto *decl = kernel.table().find("timer_tick");
    ASSERT_NE(decl, nullptr);

    // Run many noisy executions of some other syscall; interrupt blocks
    // belong to timer_tick's handler and should appear eventually.
    const auto &other = kernel.table().decls[1];
    prog::Call call;
    call.decl = &other;
    call.args = prog::defaultArgs(other);
    prog::fixupLengths(call);
    auto slots = prog::flattenCall(call, prog::staticResolver);

    Rng noise(3);
    bool saw_interrupt = false;
    for (int i = 0; i < 500 && !saw_interrupt; ++i) {
        auto state = kernel.initialState();
        std::vector<uint32_t> trace;
        kernel.executeCall(other.id, slots, state, trace, &noise);
        for (uint32_t b : trace)
            saw_interrupt |= (kernel.block(b).handler == decl->id);
    }
    EXPECT_TRUE(saw_interrupt);
}

}  // namespace
}  // namespace sp::kern
