// Tests for the offline half of coverage cartography (src/analysis):
// the snapshot-log round trip back into a CovProfile, heat-band
// percentiles, subsystem attribution, the analyze report JSON and its
// --directed-from target round trip, and the end-to-end acceptance
// property: cold-frontier targets mined from an undirected campaign
// steer Snowplow-D to blocks that campaign never reached.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/frontier.h"
#include "analysis/report.h"
#include "core/directed.h"
#include "core/pmm.h"
#include "fuzz/campaign.h"
#include "kernel/subsystems.h"
#include "mutate/localizer.h"
#include "util/json.h"

namespace sp::analysis {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

std::string
tempPath(const char *tag)
{
    std::string path = std::string("/tmp/sp_analysis_") + tag + "_XXXXXX";
    std::vector<char> buf(path.begin(), path.end());
    buf.push_back('\0');
    const int fd = mkstemp(buf.data());
    EXPECT_GE(fd, 0);
    if (fd >= 0)
        ::close(fd);
    return buf.data();
}

TEST(CovProfile, LogRoundTripMatchesMergedMap)
{
    // Diamond CFG: 0->1->3->5, 0->2->3, 1->4 (4 stays unreached).
    auto plan = obs::CovMapPlan::build(
        6, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 5}, {1, 4}});
    obs::CovMap map(std::move(plan), /*workers=*/2);

    const std::string path = tempPath("roundtrip");
    ASSERT_TRUE(map.openLog(path, "\"kernel\":{\"seed\":6}"));

    map.shard(0).recordTrace({0, 1, 3, 5});
    map.shard(1).recordTrace({0, 2, 3, 5});
    map.onCheckpoint(250);
    map.shard(0).recordTrace({0, 1, 3, 5});
    map.shard(0).recordTrace({5, 0});  // one stray transition
    map.onCheckpoint(500);
    map.shard(1).recordTrace({0, 1, 3, 5});
    map.finalize(600);

    auto profile = CovProfile::load(path);
    ASSERT_TRUE(profile.ok()) << profile.error;
    EXPECT_EQ(profile.num_blocks, 6u);
    EXPECT_EQ(profile.edges.size(), map.plan().numEdges());
    EXPECT_EQ(profile.execs, 600u);
    // Two checkpoints plus the finalize tail window.
    EXPECT_EQ(profile.windows.size(), 3u);
    EXPECT_EQ(profile.stray_edges, 1u);

    // Delta reconstruction is exact: the profile equals the live map.
    EXPECT_EQ(profile.block_hits, map.mergedBlockHits());
    EXPECT_EQ(profile.edge_hits, map.mergedEdgeHits());

    // The spliced campaign header survives the round trip.
    const json::Value *kernel_obj = profile.header.find("kernel");
    ASSERT_NE(kernel_obj, nullptr);
    const json::Value *seed = kernel_obj->find("seed");
    ASSERT_NE(seed, nullptr);
    EXPECT_EQ(seed->asUint(), 6u);

    // The tail window carries the hits recorded after checkpoint 500.
    EXPECT_EQ(profile.windows.back().execs, 600u);
    EXPECT_GT(profile.windows.back().block_hit_delta, 0u);

    std::remove(path.c_str());
}

TEST(CovProfile, LoadReportsMissingAndMalformedFiles)
{
    auto missing = CovProfile::load("/nonexistent/covmap.jsonl");
    EXPECT_FALSE(missing.ok());
    EXPECT_FALSE(missing.error.empty());

    const std::string path = tempPath("badheader");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"not_a_covmap\"}\n", f);
    std::fclose(f);
    auto bad = CovProfile::load(path);
    EXPECT_FALSE(bad.ok());
    std::remove(path.c_str());
}

TEST(Heat, NearestRankThresholdsAndBands)
{
    // 10 reached blocks, hits 10..100: p10 -> 10, p90 -> 90.
    std::vector<uint64_t> hits;
    for (uint64_t h = 10; h <= 100; h += 10)
        hits.push_back(h);
    hits.push_back(0);  // unreached entries are excluded
    auto t = heatThresholds(hits);
    EXPECT_EQ(t.cold_max, 10u);
    EXPECT_EQ(t.hot_min, 90u);

    EXPECT_EQ(heatOf(0, t), Heat::Unreached);
    EXPECT_EQ(heatOf(10, t), Heat::Cold);
    EXPECT_EQ(heatOf(11, t), Heat::Warm);
    EXPECT_EQ(heatOf(89, t), Heat::Warm);
    EXPECT_EQ(heatOf(90, t), Heat::Hot);
    EXPECT_EQ(heatOf(300, t), Heat::Hot);

    EXPECT_STREQ(heatName(Heat::Unreached), "unreached");
    EXPECT_STREQ(heatName(Heat::Hot), "hot");

    // Degenerate cases: empty and uniform maps.
    auto empty = heatThresholds({0, 0});
    EXPECT_EQ(heatOf(0, empty), Heat::Unreached);
    auto uniform = heatThresholds({7, 7, 7});
    EXPECT_EQ(uniform.cold_max, 7u);
    EXPECT_EQ(uniform.hot_min, 7u);
    EXPECT_EQ(heatOf(7, uniform), Heat::Hot);  // hot wins ties
}

TEST(Subsystem, NamesFollowVariantRules)
{
    EXPECT_EQ(subsystemOfSyscall("ioctl$scsi"), "scsi");
    EXPECT_EQ(subsystemOfSyscall("sys3$open_res1"), "res1");
    EXPECT_EQ(subsystemOfSyscall("sys9$use_res1"), "res1");
    EXPECT_EQ(subsystemOfSyscall("sys4$close_res2"), "res2");
    EXPECT_EQ(subsystemOfSyscall("read"), "read");

    const auto &kernel = testKernel();
    const auto by_block = blockSubsystems(kernel);
    ASSERT_EQ(by_block.size(), kernel.blocks().size());
    for (const auto &name : by_block)
        EXPECT_FALSE(name.empty());
}

/** Run a short undirected campaign with a covmap log attached. */
std::string
runProfiledCampaign(uint64_t seed, uint64_t budget)
{
    const auto &kernel = testKernel();
    obs::CovMap map(obs::CovMapPlan::build(kernel.blocks().size(),
                                           kernel.staticEdges()),
                    /*workers=*/1);
    const std::string path = tempPath("campaign");
    EXPECT_TRUE(map.openLog(path, "\"kernel\":{\"seed\":6}"));

    fuzz::CampaignOptions opts;
    opts.workers = 1;
    opts.fuzz.exec_budget = budget;
    opts.fuzz.seed = seed;
    opts.fuzz.seed_corpus_size = 20;
    opts.fuzz.checkpoint_every = 250;
    opts.fuzz.covmap = &map;
    fuzz::CampaignEngine engine(kernel, opts, [](size_t) {
        return std::make_unique<mut::RandomLocalizer>();
    });
    auto report = engine.run();
    map.finalize(report.execs);
    return path;
}

TEST(Report, JsonParsesAndTargetsRoundTrip)
{
    const std::string log_path = runProfiledCampaign(5, 1500);
    auto profile = CovProfile::load(log_path);
    ASSERT_TRUE(profile.ok()) << profile.error;

    const auto &kernel = testKernel();
    auto analysis = analyze(std::move(profile), &kernel,
                            /*target_cap=*/16);
    EXPECT_FALSE(analysis.targets.empty());
    EXPECT_FALSE(analysis.subsystems.empty());
    // Band counts partition the block set.
    size_t banded = 0;
    for (size_t count : analysis.band_counts)
        banded += count;
    EXPECT_EQ(banded, analysis.profile.num_blocks);

    const std::string json = reportJson(analysis, log_path);
    auto parsed = json::parse(json);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_EQ(parsed.value.find("type")->str(), "covmap_report");
    EXPECT_EQ(parsed.value.find("version")->asUint(), 1u);
    ASSERT_NE(parsed.value.find("targets"), nullptr);
    EXPECT_EQ(parsed.value.find("targets")->array().size(),
              analysis.targets.size());
    ASSERT_NE(parsed.value.find("heat"), nullptr);
    ASSERT_NE(parsed.value.find("subsystems"), nullptr);
    ASSERT_NE(parsed.value.find("timeline"), nullptr);

    // The human report mentions every subsystem group.
    const std::string text = reportText(analysis, log_path);
    EXPECT_NE(text.find(analysis.subsystems.front().name),
              std::string::npos);

    // reportJson -> loadTargets preserves the ranked block list.
    const std::string report_path = tempPath("report");
    std::FILE *f = std::fopen(report_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::string error;
    const auto targets = loadTargets(report_path, &error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(targets.size(), analysis.targets.size());
    for (size_t i = 0; i < targets.size(); ++i)
        EXPECT_EQ(targets[i], analysis.targets[i].target);

    std::remove(log_path.c_str());
    std::remove(report_path.c_str());
}

TEST(Report, LoadTargetsRejectsNonReports)
{
    std::string error;
    EXPECT_TRUE(loadTargets("/nonexistent/report.json", &error).empty());
    EXPECT_FALSE(error.empty());

    const std::string path = tempPath("notareport");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"something_else\"}", f);
    std::fclose(f);
    error.clear();
    EXPECT_TRUE(loadTargets(path, &error).empty());
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

TEST(DirectedFromFrontier, ReachesTargetsTheUndirectedRunMissed)
{
    // The acceptance property behind `fuzz --covmap-out` ->
    // `analyze` -> `fuzz --directed-from`: mine the cold frontier of
    // an undirected run, then let Snowplow-D chase those exact blocks.
    const std::string log_path = runProfiledCampaign(9, 1500);
    auto profile = CovProfile::load(log_path);
    ASSERT_TRUE(profile.ok()) << profile.error;
    std::remove(log_path.c_str());

    const auto &kernel = testKernel();
    auto analysis = analyze(std::move(profile), &kernel, 16);
    ASSERT_FALSE(analysis.targets.empty());

    std::vector<uint32_t> targets;
    for (const auto &t : analysis.targets) {
        // Frontier targets are unreached by construction.
        EXPECT_EQ(analysis.profile.block_hits[t.target], 0u);
        targets.push_back(t.target);
    }

    core::Pmm model;  // deterministic default-initialized weights
    core::DirectedOptions opts;
    opts.exec_budget = 20000;
    opts.seed = 13;
    auto result = core::runSnowplowD(kernel, model, targets, opts);
    EXPECT_GE(result.reached.size(), 1u);
    EXPECT_GT(result.execs_total, 0u);

    // Everything reported reached really is in the target set.
    std::unordered_set<uint32_t> wanted(targets.begin(), targets.end());
    for (uint32_t block : result.reached)
        EXPECT_EQ(wanted.count(block), 1u);
}

}  // namespace
}  // namespace sp::analysis
