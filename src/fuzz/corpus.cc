#include "fuzz/corpus.h"

#include "util/logging.h"

namespace sp::fuzz {

bool
Corpus::maybeAdd(const prog::Prog &program, const exec::ExecResult &result,
                 uint64_t exec_counter)
{
    const size_t new_edges = total_.countNewEdges(result.coverage);
    total_.merge(result.coverage);
    if (new_edges == 0)
        return false;
    const uint64_t hash = program.hash();
    if (!hashes_.insert(hash).second)
        return false;

    CorpusEntry entry;
    entry.program.calls = program.calls;  // deep copy
    entry.result = result;
    entry.content_hash = hash;
    entry.admitted_at_exec = exec_counter;
    entries_.push_back(std::move(entry));
    return true;
}

const CorpusEntry &
Corpus::pick(Rng &rng) const
{
    SP_ASSERT(!entries_.empty(), "pick from an empty corpus");
    // Bias toward the newest quarter of the corpus half the time:
    // fresh entries sit at the coverage frontier.
    if (entries_.size() >= 8 && rng.chance(0.5)) {
        const size_t quarter = entries_.size() / 4;
        const size_t start = entries_.size() - quarter;
        return entries_[start + rng.below(quarter)];
    }
    return entries_[rng.below(entries_.size())];
}

const CorpusEntry &
Corpus::entry(size_t index) const
{
    SP_ASSERT(index < entries_.size());
    return entries_[index];
}

}  // namespace sp::fuzz
