# Empty compiler generated dependencies file for probe_snowplow.
# This may be replaced when dependencies are built.
