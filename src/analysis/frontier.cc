#include "analysis/frontier.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

namespace sp::analysis {

namespace {

/** Fold one `[[index, delta], ...]` array into `cumulative`; returns
 *  the delta sum, or sets `error` on malformed entries. */
uint64_t
applyDeltas(const json::Value &pairs, std::vector<uint64_t> &cumulative,
            std::string &error, const char *what)
{
    uint64_t total = 0;
    for (const json::Value &pair : pairs.array()) {
        const json::Value *index = pair.at(0);
        const json::Value *delta = pair.at(1);
        if (index == nullptr || delta == nullptr) {
            error = std::string("malformed ") + what + " delta pair";
            return total;
        }
        const uint64_t i = index->asUint();
        if (i >= cumulative.size()) {
            error = std::string(what) + " delta index out of range";
            return total;
        }
        cumulative[i] += delta->asUint();
        total += delta->asUint();
    }
    return total;
}

}  // namespace

CovProfile
CovProfile::load(const std::string &path)
{
    CovProfile profile;
    std::ifstream in(path);
    if (!in) {
        profile.error = "cannot open " + path;
        return profile;
    }

    std::string line;
    size_t line_no = 0;
    bool have_header = false;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;
        json::ParseResult parsed = json::parse(line);
        if (!parsed.ok()) {
            profile.error = "line " + std::to_string(line_no) + ": " +
                            parsed.error;
            return profile;
        }
        const json::Value &record = parsed.value;
        const json::Value *type = record.find("type");
        if (type == nullptr) {
            profile.error =
                "line " + std::to_string(line_no) + ": missing type";
            return profile;
        }

        if (type->str() == "covmap_header") {
            if (have_header) {
                profile.error = "duplicate covmap_header";
                return profile;
            }
            have_header = true;
            profile.header = record;
            const json::Value *num_blocks = record.find("num_blocks");
            const json::Value *edges = record.find("edges");
            if (num_blocks == nullptr || edges == nullptr) {
                profile.error = "covmap_header missing fields";
                return profile;
            }
            profile.num_blocks =
                static_cast<size_t>(num_blocks->asUint());
            for (const json::Value &edge : edges->array()) {
                const json::Value *from = edge.at(0);
                const json::Value *to = edge.at(1);
                if (from == nullptr || to == nullptr) {
                    profile.error = "malformed header edge";
                    return profile;
                }
                profile.edges.emplace_back(
                    static_cast<uint32_t>(from->asUint()),
                    static_cast<uint32_t>(to->asUint()));
            }
            profile.block_hits.assign(profile.num_blocks, 0);
            profile.edge_hits.assign(profile.edges.size(), 0);
            continue;
        }

        if (!have_header) {
            profile.error = "record before covmap_header";
            return profile;
        }

        if (type->str() == "covmap_window") {
            WindowRecord window;
            if (const json::Value *v = record.find("execs"))
                window.execs = v->asUint();
            if (const json::Value *v = record.find("new_blocks")) {
                for (const json::Value &block : v->array()) {
                    window.new_blocks.push_back(
                        static_cast<uint32_t>(block.asUint()));
                }
            }
            if (const json::Value *v = record.find("block_deltas")) {
                window.block_hit_delta = applyDeltas(
                    *v, profile.block_hits, profile.error, "block");
            }
            if (const json::Value *v = record.find("edge_deltas"))
                applyDeltas(*v, profile.edge_hits, profile.error,
                            "edge");
            if (!profile.ok())
                return profile;
            if (const json::Value *v = record.find("stray_edges")) {
                window.stray_edges = v->asUint();
                profile.stray_edges += window.stray_edges;
            }
            if (const json::Value *v = record.find("blocks_hit"))
                window.blocks_hit = v->asUint();
            if (const json::Value *v = record.find("edges_hit"))
                window.edges_hit = v->asUint();
            if (const json::Value *v = record.find("frontier_size"))
                window.frontier_size = v->asUint();
            profile.execs = window.execs;
            profile.windows.push_back(std::move(window));
            continue;
        }

        if (type->str() == "covmap_final") {
            if (const json::Value *v = record.find("execs"))
                profile.execs = v->asUint();
            continue;
        }

        profile.error = "line " + std::to_string(line_no) +
                        ": unknown record type " + type->str();
        return profile;
    }

    if (!have_header)
        profile.error = "no covmap_header in " + path;
    return profile;
}

const char *
heatName(Heat heat)
{
    switch (heat) {
    case Heat::Unreached: return "unreached";
    case Heat::Cold: return "cold";
    case Heat::Warm: return "warm";
    case Heat::Hot: return "hot";
    }
    return "?";
}

HeatThresholds
heatThresholds(const std::vector<uint64_t> &block_hits)
{
    std::vector<uint64_t> reached;
    reached.reserve(block_hits.size());
    for (const uint64_t hits : block_hits) {
        if (hits != 0)
            reached.push_back(hits);
    }
    HeatThresholds t;
    if (reached.empty())
        return t;
    std::sort(reached.begin(), reached.end());
    // Nearest-rank percentiles: the smallest hit count with at least
    // 10% (90%) of reached blocks at or below it. Band membership is
    // inclusive, so every p10-tied block is cold and every p90-tied
    // block is hot — deterministic under re-sorting.
    const size_t n = reached.size();
    const size_t p10 = (n * 10 + 99) / 100;  // ceil(n * 0.10)
    const size_t p90 = (n * 90 + 99) / 100;  // ceil(n * 0.90)
    t.cold_max = reached[p10 == 0 ? 0 : p10 - 1];
    t.hot_min = reached[p90 == 0 ? 0 : p90 - 1];
    return t;
}

Heat
heatOf(uint64_t hits, const HeatThresholds &t)
{
    if (hits == 0)
        return Heat::Unreached;
    if (hits >= t.hot_min)
        return Heat::Hot;
    if (hits <= t.cold_max)
        return Heat::Cold;
    return Heat::Warm;
}

std::vector<FrontierTarget>
frontierTargets(const CovProfile &profile, const kern::Kernel *kernel,
                size_t cap)
{
    const obs::CovMapPlan plan = profile.plan();
    const auto entries =
        obs::computeFrontier(plan, profile.block_hits, cap);

    std::vector<std::string> subsystems;
    if (kernel != nullptr)
        subsystems = blockSubsystems(*kernel);

    std::vector<FrontierTarget> targets;
    targets.reserve(entries.size());
    for (const obs::FrontierEntry &entry : entries) {
        FrontierTarget target;
        target.target = entry.target;
        target.guard = entry.guard;
        target.guard_hits = entry.guard_hits;
        if (kernel != nullptr) {
            if (entry.target < subsystems.size())
                target.subsystem = subsystems[entry.target];
            target.bug_site = kernel->bugAt(entry.target) != nullptr;
        }
        targets.push_back(std::move(target));
    }
    return targets;
}

std::string
subsystemOfSyscall(const std::string &syscall_name)
{
    const size_t dollar = syscall_name.find('$');
    if (dollar == std::string::npos)
        return syscall_name;
    std::string variant = syscall_name.substr(dollar + 1);
    for (const char *prefix : {"open_", "use_", "close_"}) {
        const size_t len = std::string(prefix).size();
        if (variant.compare(0, len, prefix) == 0)
            return variant.substr(len);
    }
    return variant;
}

std::vector<std::string>
blockSubsystems(const kern::Kernel &kernel)
{
    // Handler id -> subsystem, then blocks via their owning handler.
    std::vector<std::string> by_handler;
    by_handler.reserve(kernel.table().decls.size());
    for (const auto &decl : kernel.table().decls)
        by_handler.push_back(subsystemOfSyscall(decl.name));

    std::vector<std::string> by_block(kernel.blocks().size());
    for (size_t b = 0; b < kernel.blocks().size(); ++b) {
        const uint32_t handler = kernel.blocks()[b].handler;
        by_block[b] = handler < by_handler.size()
                          ? by_handler[handler]
                          : "interrupt";
    }
    return by_block;
}

std::vector<SubsystemHeat>
subsystemHeat(const CovProfile &profile, const kern::Kernel &kernel,
              const HeatThresholds &thresholds,
              const std::vector<FrontierTarget> &targets)
{
    const auto by_block = blockSubsystems(kernel);
    std::map<std::string, SubsystemHeat> groups;
    const size_t limit =
        std::min(profile.block_hits.size(), by_block.size());
    for (size_t b = 0; b < limit; ++b) {
        SubsystemHeat &group = groups[by_block[b]];
        group.name = by_block[b];
        ++group.blocks;
        const uint64_t hits = profile.block_hits[b];
        group.total_hits += hits;
        switch (heatOf(hits, thresholds)) {
        case Heat::Unreached: break;
        case Heat::Cold:
            ++group.reached;
            ++group.cold;
            break;
        case Heat::Warm: ++group.reached; break;
        case Heat::Hot:
            ++group.reached;
            ++group.hot;
            break;
        }
    }
    for (const FrontierTarget &target : targets) {
        if (target.target >= by_block.size())
            continue;
        SubsystemHeat &group = groups[by_block[target.target]];
        group.name = by_block[target.target];
        ++group.frontier;
    }

    std::vector<SubsystemHeat> out;
    out.reserve(groups.size());
    for (auto &[name, group] : groups)
        out.push_back(std::move(group));
    std::sort(out.begin(), out.end(),
              [](const SubsystemHeat &a, const SubsystemHeat &b) {
                  if (a.total_hits != b.total_hits)
                      return a.total_hits > b.total_hits;
                  return a.name < b.name;
              });
    return out;
}

}  // namespace sp::analysis
