#include "kernel/cond.h"

#include <cstdio>

#include "kernel/state.h"
#include "util/logging.h"

namespace sp::kern {

std::string
Cond::describe() const
{
    char buf[128];
    switch (kind) {
      case CondKind::Always:
        return "true";
      case CondKind::ArgEq:
        std::snprintf(buf, sizeof(buf), "arg[%u] == 0x%llx", slot,
                      static_cast<unsigned long long>(a));
        return buf;
      case CondKind::ArgNeq:
        std::snprintf(buf, sizeof(buf), "arg[%u] != 0x%llx", slot,
                      static_cast<unsigned long long>(a));
        return buf;
      case CondKind::ArgLt:
        std::snprintf(buf, sizeof(buf), "arg[%u] < 0x%llx", slot,
                      static_cast<unsigned long long>(a));
        return buf;
      case CondKind::ArgGe:
        std::snprintf(buf, sizeof(buf), "arg[%u] >= 0x%llx", slot,
                      static_cast<unsigned long long>(a));
        return buf;
      case CondKind::ArgMaskAll:
        std::snprintf(buf, sizeof(buf), "(arg[%u] & 0x%llx) == mask",
                      slot, static_cast<unsigned long long>(a));
        return buf;
      case CondKind::ArgMaskNone:
        std::snprintf(buf, sizeof(buf), "(arg[%u] & 0x%llx) == 0", slot,
                      static_cast<unsigned long long>(a));
        return buf;
      case CondKind::ArgInRange:
        std::snprintf(buf, sizeof(buf), "0x%llx <= arg[%u] <= 0x%llx",
                      static_cast<unsigned long long>(a), slot,
                      static_cast<unsigned long long>(b));
        return buf;
      case CondKind::StateFlagSet:
        std::snprintf(buf, sizeof(buf), "state.flag[%u]", flag);
        return buf;
      case CondKind::ResourceAlive:
        std::snprintf(buf, sizeof(buf), "alive(arg[%u], kind=%u)", slot,
                      flag);
        return buf;
    }
    SP_PANIC("unreachable cond kind");
}

bool
evalCond(const Cond &cond, const std::vector<uint64_t> &slots,
         const KernelState &state)
{
    auto slotValue = [&]() -> uint64_t {
        SP_ASSERT(cond.slot < slots.size(),
                  "cond reads slot %u of %zu", cond.slot, slots.size());
        return slots[cond.slot];
    };
    switch (cond.kind) {
      case CondKind::Always:
        return true;
      case CondKind::ArgEq:
        return slotValue() == cond.a;
      case CondKind::ArgNeq:
        return slotValue() != cond.a;
      case CondKind::ArgLt:
        return slotValue() < cond.a;
      case CondKind::ArgGe:
        return slotValue() >= cond.a;
      case CondKind::ArgMaskAll:
        return (slotValue() & cond.a) == cond.a;
      case CondKind::ArgMaskNone:
        return (slotValue() & cond.a) == 0;
      case CondKind::ArgInRange: {
        const uint64_t v = slotValue();
        return v >= cond.a && v <= cond.b;
      }
      case CondKind::StateFlagSet:
        return state.flag(cond.flag);
      case CondKind::ResourceAlive:
        return state.aliveOfKind(slotValue(), cond.flag);
    }
    SP_PANIC("unreachable cond kind");
}

}  // namespace sp::kern
