#include "fleet/aggregate.h"

#include <algorithm>

#include "kernel/kernel.h"
#include "prog/serialize.h"
#include "util/hash.h"

namespace sp::fleet {

FleetAggregate::FleetAggregate(const kern::Kernel &kernel,
                               bool covmap_enabled)
    : kernel_(kernel),
      crashes_(kernel),
      covmap_enabled_(covmap_enabled),
      plan_(covmap_enabled
                ? obs::CovMapPlan::build(kernel.blocks().size(),
                                         kernel.staticEdges())
                : obs::CovMapPlan{})
{
    block_hits_.assign(plan_.num_blocks, 0);
    edge_hits_.assign(plan_.numEdges(), 0);
}

MergeOutcome
FleetAggregate::merge(const LeaseResultMsg &result)
{
    MergeOutcome outcome;

    for (const WireProgram &program : result.programs) {
        // data::progKey identity: FNV-1a of the formatProg text. The
        // node sent exactly that text, so hashing it here equals
        // hashing the parsed program's re-rendering.
        const uint64_t key = fnv1a(program.text);
        if (!program_keys_.insert(key).second) {
            ++outcome.dup_programs;
            continue;
        }
        ++outcome.new_programs;
        for (const uint32_t block : program.blocks)
            blocks_.insert(block);
        for (const uint64_t edge : program.edges)
            edges_.insert(edge);
        seed_pool_.push_back(program.text);
        if (seed_pool_.size() > kSeedPoolCap)
            seed_pool_.pop_front();
    }

    for (const WireCrash &crash : result.crashes) {
        if (crash.bug_index >= kernel_.bugs().size())
            continue;  // not this kernel's crash; drop, don't die
        auto parsed = prog::parseProg(crash.trigger, kernel_.table());
        if (!parsed.ok())
            continue;
        const size_t before = crashes_.uniqueCrashes();
        crashes_.record(crash.bug_index, *parsed.prog, crash.slot);
        if (crashes_.uniqueCrashes() > before)
            ++outcome.new_crashes;
        else
            ++outcome.dup_crashes;
    }

    if (covmap_enabled_ && result.have_cov) {
        for (const auto &[index, delta] : result.block_deltas) {
            if (index < block_hits_.size())
                block_hits_[index] += delta;
        }
        for (const auto &[index, delta] : result.edge_deltas) {
            if (index < edge_hits_.size())
                edge_hits_[index] += delta;
        }
        stray_edges_ += result.stray_edges;
        ++cov_windows_;
    }

    if (result.have_policy) {
        if (policy_name_.empty())
            policy_name_ = result.policy_name;
        for (const WireArm &arm : result.arms) {
            auto &[pulls, wins] = posterior_[arm.arm];
            pulls += arm.pulls;
            wins += arm.wins;
        }
        pmm_share_weighted_ +=
            result.pmm_share * static_cast<double>(result.execs);
        pmm_share_execs_ += result.execs;
    }

    return outcome;
}

std::vector<std::string>
FleetAggregate::seedBatch(size_t max) const
{
    std::vector<std::string> batch;
    const size_t n = std::min(max, seed_pool_.size());
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i)
        batch.push_back(seed_pool_[seed_pool_.size() - n + i]);
    return batch;
}

obs::CovSummary
FleetAggregate::covSummary(uint64_t execs, size_t cap) const
{
    obs::CovSummary summary;
    summary.execs = execs;
    summary.windows = cov_windows_;
    for (const uint64_t hits : block_hits_) {
        summary.blocks_hit += hits != 0;
        summary.total_block_hits += hits;
    }
    for (const uint64_t hits : edge_hits_)
        summary.edges_hit += hits != 0;
    summary.stray_edges = stray_edges_;
    auto frontier = obs::computeFrontier(plan_, block_hits_, 0);
    summary.frontier_size = frontier.size();
    if (cap != 0 && frontier.size() > cap)
        frontier.resize(cap);
    summary.top_frontier = std::move(frontier);
    return summary;
}

std::string
FleetAggregate::coverageJson(uint64_t execs) const
{
    if (!covmap_enabled_)
        return "{\"enabled\":false}";
    const obs::CovSummary snap =
        covSummary(execs, obs::CovMap::kSummaryFrontierCap);
    std::string out;
    out.reserve(256);
    out += "{\"enabled\":true,\"execs\":";
    out += std::to_string(snap.execs);
    out += ",\"windows\":";
    out += std::to_string(snap.windows);
    out += ",\"blocks_total\":";
    out += std::to_string(plan_.num_blocks);
    out += ",\"blocks_hit\":";
    out += std::to_string(snap.blocks_hit);
    out += ",\"edges_total\":";
    out += std::to_string(plan_.numEdges());
    out += ",\"edges_hit\":";
    out += std::to_string(snap.edges_hit);
    out += ",\"total_block_hits\":";
    out += std::to_string(snap.total_block_hits);
    out += ",\"stray_edges\":";
    out += std::to_string(snap.stray_edges);
    out += ",\"frontier_size\":";
    out += std::to_string(snap.frontier_size);
    out += ",\"frontier\":[";
    for (size_t i = 0; i < snap.top_frontier.size(); ++i) {
        const obs::FrontierEntry &entry = snap.top_frontier[i];
        if (i != 0)
            out += ',';
        out += "{\"target\":";
        out += std::to_string(entry.target);
        out += ",\"guard\":";
        out += std::to_string(entry.guard);
        out += ",\"guard_hits\":";
        out += std::to_string(entry.guard_hits);
        out += '}';
    }
    out += "]}";
    return out;
}

double
FleetAggregate::pmmShare() const
{
    return pmm_share_execs_ == 0
               ? 0.0
               : pmm_share_weighted_ /
                     static_cast<double>(pmm_share_execs_);
}

uint64_t
FleetAggregate::posteriorPulls(uint32_t arm) const
{
    const auto it = posterior_.find(arm);
    return it == posterior_.end() ? 0 : it->second.first;
}

uint64_t
FleetAggregate::posteriorWins(uint32_t arm) const
{
    const auto it = posterior_.find(arm);
    return it == posterior_.end() ? 0 : it->second.second;
}

std::vector<WireArm>
FleetAggregate::posteriorArms() const
{
    std::vector<WireArm> arms;
    arms.reserve(posterior_.size());
    for (const auto &[arm, counts] : posterior_) {
        if (counts.first == 0)
            continue;
        WireArm entry;
        entry.arm = arm;
        entry.pulls = counts.first;
        entry.wins = counts.second;
        arms.push_back(entry);
    }
    return arms;
}

}  // namespace sp::fleet
