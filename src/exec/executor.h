/**
 * @file
 * Program execution over the simulated kernel.
 *
 * Every run starts from a pristine kernel snapshot (the VM-snapshot
 * discipline of §3.1), dispatches the program's calls sequentially,
 * resolves resource references to the ids produced by earlier calls,
 * and aggregates block/edge coverage. In noisy mode (the default for
 * fuzzing, emulating the network-RPC transport) the kernel may execute
 * stray interrupt blocks and flaky bugs can trigger; deterministic mode
 * (emulating the virtio transport used for data collection) removes
 * both noise sources.
 *
 * The execution strategy itself lives behind the ExecBackend seam
 * (backend.h): the Executor owns the noise stream and throughput
 * tallies and delegates each run to its backend — the dirty-restore
 * fast backend by default, the original interpreter on request
 * (`--exec-backend ref`). Both are bit-identical; see backend.h.
 */
#ifndef SP_EXEC_EXECUTOR_H
#define SP_EXEC_EXECUTOR_H

#include <memory>
#include <vector>

#include "exec/backend.h"
#include "exec/coverage.h"
#include "kernel/kernel.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::exec {

/** Execution configuration. */
struct ExecOptions
{
    /** Deterministic (virtio-style) execution: no noise, no flaky bugs. */
    bool deterministic = true;
    /** Seed of the noise stream for non-deterministic mode. */
    uint64_t noise_seed = 0;
    /** Execution backend (bit-identical; Fast unless diffing). */
    BackendKind backend = BackendKind::Fast;
};

/** Executes programs against one kernel. */
class Executor
{
  public:
    Executor(const kern::Kernel &kernel, const ExecOptions &opts = {});

    /** Execute `prog` from a fresh kernel state. */
    ExecResult run(const prog::Prog &prog);

    /** The kernel under test. */
    const kern::Kernel &kernel() const { return kernel_; }

    /** The backend executing this executor's programs. */
    BackendKind backendKind() const { return backend_->kind(); }

    /** Total calls dispatched so far (throughput accounting). */
    uint64_t callsExecuted() const { return calls_executed_; }

    /** Total programs executed so far. */
    uint64_t programsExecuted() const { return programs_executed_; }

  private:
    const kern::Kernel &kernel_;
    ExecOptions opts_;
    Rng noise_;
    std::unique_ptr<ExecBackend> backend_;
    uint64_t calls_executed_ = 0;
    uint64_t programs_executed_ = 0;
};

/**
 * A bank of executors, one per campaign worker. Executor 0 runs with
 * `base` verbatim (its noise stream is bit-for-bit the single-executor
 * stream), every other executor gets a noise seed split from the base
 * seed so concurrent workers draw decorrelated noise. Each worker must
 * use only its own executor; the pool itself is immutable after
 * construction.
 */
class ExecutorPool
{
  public:
    ExecutorPool(const kern::Kernel &kernel, const ExecOptions &base,
                 size_t count);

    Executor &at(size_t worker) { return *executors_[worker]; }
    const Executor &at(size_t worker) const
    {
        return *executors_[worker];
    }
    size_t size() const { return executors_.size(); }

    /** @name Pool-wide throughput tallies (quiescent reads) */
    /** @{ */
    uint64_t totalCallsExecuted() const;
    uint64_t totalProgramsExecuted() const;
    /** @} */

  private:
    std::vector<std::unique_ptr<Executor>> executors_;
};

}  // namespace sp::exec

#endif  // SP_EXEC_EXECUTOR_H
