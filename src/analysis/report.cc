#include "analysis/report.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/telemetry.h"

namespace sp::analysis {

using obs::jsonQuote;

Analysis
analyze(CovProfile profile, const kern::Kernel *kernel,
        size_t target_cap)
{
    Analysis analysis;
    analysis.profile = std::move(profile);
    if (!analysis.profile.ok())
        return analysis;
    analysis.thresholds = heatThresholds(analysis.profile.block_hits);
    for (const uint64_t hits : analysis.profile.block_hits) {
        ++analysis.band_counts[static_cast<size_t>(
            heatOf(hits, analysis.thresholds))];
    }
    analysis.targets =
        frontierTargets(analysis.profile, kernel, target_cap);
    if (kernel != nullptr) {
        analysis.subsystems =
            subsystemHeat(analysis.profile, *kernel,
                          analysis.thresholds, analysis.targets);
    }
    return analysis;
}

std::string
reportJson(const Analysis &analysis, const std::string &source_path)
{
    const CovProfile &profile = analysis.profile;
    std::string out;
    out.reserve(1024);
    out += "{\"type\":\"covmap_report\",\"version\":1,\"source\":";
    out += jsonQuote(source_path);
    out += ",\"execs\":" + std::to_string(profile.execs);
    out += ",\"windows\":" + std::to_string(profile.windows.size());
    out += ",\"blocks_total\":" + std::to_string(profile.num_blocks);
    size_t blocks_hit = 0;
    for (const uint64_t hits : profile.block_hits)
        blocks_hit += hits != 0;
    size_t edges_hit = 0;
    for (const uint64_t hits : profile.edge_hits)
        edges_hit += hits != 0;
    out += ",\"blocks_hit\":" + std::to_string(blocks_hit);
    out += ",\"edges_total\":" + std::to_string(profile.edges.size());
    out += ",\"edges_hit\":" + std::to_string(edges_hit);
    out += ",\"stray_edges\":" + std::to_string(profile.stray_edges);

    out += ",\"heat\":{\"cold_max\":";
    out += std::to_string(analysis.thresholds.cold_max);
    out += ",\"hot_min\":";
    out += std::to_string(analysis.thresholds.hot_min);
    const auto band = [&analysis](Heat heat) {
        return analysis.band_counts[static_cast<size_t>(heat)];
    };
    out += ",\"unreached\":" + std::to_string(band(Heat::Unreached));
    out += ",\"cold\":" + std::to_string(band(Heat::Cold));
    out += ",\"warm\":" + std::to_string(band(Heat::Warm));
    out += ",\"hot\":" + std::to_string(band(Heat::Hot));
    out += '}';

    out += ",\"subsystems\":[";
    for (size_t i = 0; i < analysis.subsystems.size(); ++i) {
        const SubsystemHeat &group = analysis.subsystems[i];
        if (i != 0)
            out += ',';
        out += "{\"name\":" + jsonQuote(group.name);
        out += ",\"blocks\":" + std::to_string(group.blocks);
        out += ",\"reached\":" + std::to_string(group.reached);
        out += ",\"hot\":" + std::to_string(group.hot);
        out += ",\"cold\":" + std::to_string(group.cold);
        out += ",\"frontier\":" + std::to_string(group.frontier);
        out += ",\"total_hits\":" + std::to_string(group.total_hits);
        out += '}';
    }
    out += ']';

    out += ",\"targets\":[";
    for (size_t i = 0; i < analysis.targets.size(); ++i) {
        const FrontierTarget &target = analysis.targets[i];
        if (i != 0)
            out += ',';
        out += "{\"block\":" + std::to_string(target.target);
        out += ",\"guard\":" + std::to_string(target.guard);
        out += ",\"guard_hits\":" + std::to_string(target.guard_hits);
        out += ",\"subsystem\":" + jsonQuote(target.subsystem);
        out += ",\"bug_site\":";
        out += target.bug_site ? "true" : "false";
        out += '}';
    }
    out += ']';

    out += ",\"timeline\":[";
    for (size_t i = 0; i < profile.windows.size(); ++i) {
        const WindowRecord &window = profile.windows[i];
        if (i != 0)
            out += ',';
        out += "{\"execs\":" + std::to_string(window.execs);
        out += ",\"new_blocks\":" +
               std::to_string(window.new_blocks.size());
        out += ",\"blocks_hit\":" + std::to_string(window.blocks_hit);
        out += ",\"edges_hit\":" + std::to_string(window.edges_hit);
        out += ",\"frontier_size\":" +
               std::to_string(window.frontier_size);
        out += '}';
    }
    out += "]}";
    return out;
}

std::string
reportText(const Analysis &analysis, const std::string &source_path)
{
    const CovProfile &profile = analysis.profile;
    std::ostringstream out;
    out << "coverage cartography: " << source_path << "\n";
    out << "  execs " << profile.execs << ", windows "
        << profile.windows.size() << "\n";

    size_t blocks_hit = 0;
    for (const uint64_t hits : profile.block_hits)
        blocks_hit += hits != 0;
    size_t edges_hit = 0;
    for (const uint64_t hits : profile.edge_hits)
        edges_hit += hits != 0;
    out << "  blocks " << blocks_hit << "/" << profile.num_blocks
        << " reached, edges " << edges_hit << "/"
        << profile.edges.size() << ", stray " << profile.stray_edges
        << "\n";
    const auto band = [&analysis](Heat heat) {
        return analysis.band_counts[static_cast<size_t>(heat)];
    };
    out << "  heat: hot " << band(Heat::Hot) << " (>= "
        << analysis.thresholds.hot_min << " hits), warm "
        << band(Heat::Warm) << ", cold " << band(Heat::Cold)
        << " (<= " << analysis.thresholds.cold_max
        << " hits), unreached " << band(Heat::Unreached) << "\n";

    if (!analysis.subsystems.empty()) {
        out << "  subsystems (by total hits):\n";
        for (const SubsystemHeat &group : analysis.subsystems) {
            out << "    " << group.name << ": " << group.reached << "/"
                << group.blocks << " reached, hot " << group.hot
                << ", cold " << group.cold << ", frontier "
                << group.frontier << ", hits " << group.total_hits
                << "\n";
        }
    }

    out << "  cold-frontier targets (" << analysis.targets.size()
        << "):\n";
    for (const FrontierTarget &target : analysis.targets) {
        out << "    block " << target.target << " guarded by "
            << target.guard << " (" << target.guard_hits << " hits)";
        if (!target.subsystem.empty())
            out << " [" << target.subsystem << "]";
        if (target.bug_site)
            out << " [bug site]";
        out << "\n";
    }
    return out.str();
}

std::vector<uint32_t>
loadTargets(const std::string &path, std::string *error)
{
    std::vector<uint32_t> targets;
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return targets;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    json::ParseResult parsed = json::parse(buffer.str());
    if (!parsed.ok()) {
        if (error != nullptr)
            *error = path + ": " + parsed.error;
        return targets;
    }
    const json::Value *list = parsed.value.find("targets");
    if (list == nullptr || !list->isArray()) {
        if (error != nullptr)
            *error = path + ": no targets array";
        return targets;
    }
    for (const json::Value &entry : list->array()) {
        const json::Value *block = entry.find("block");
        if (block == nullptr) {
            if (error != nullptr)
                *error = path + ": target entry without block";
            return {};
        }
        targets.push_back(static_cast<uint32_t>(block->asUint()));
    }
    if (error != nullptr)
        error->clear();
    return targets;
}

}  // namespace sp::analysis
