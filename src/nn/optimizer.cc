#include "nn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace sp::nn {

Sgd::Sgd(std::vector<Parameter> params, float lr, float weight_decay)
    : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay)
{
}

void
Sgd::step()
{
    for (auto &p : params_) {
        auto &data = p.tensor.mutableData();
        const auto &grad = p.tensor.grad();
        for (size_t i = 0; i < data.size(); ++i) {
            data[i] -= lr_ * (grad[i] + weight_decay_ * data[i]);
        }
    }
}

Adam::Adam(std::vector<Parameter> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), weight_decay_(weight_decay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto &p : params_) {
        m_.emplace_back(p.tensor.data().size(), 0.0f);
        v_.emplace_back(p.tensor.data().size(), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;
    const float bias1 =
        1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bias2 =
        1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t pi = 0; pi < params_.size(); ++pi) {
        auto &data = params_[pi].tensor.mutableData();
        const auto &grad = params_[pi].tensor.grad();
        auto &m = m_[pi];
        auto &v = v_[pi];
        for (size_t i = 0; i < data.size(); ++i) {
            const float g = grad[i];
            m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
            v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
            const float m_hat = m[i] / bias1;
            const float v_hat = v[i] / bias2;
            data[i] -= lr_ * (m_hat / (std::sqrt(v_hat) + eps_) +
                              weight_decay_ * data[i]);
        }
    }
}

float
Adam::clipGradNorm(float max_norm)
{
    SP_ASSERT(max_norm > 0.0f);
    double total = 0.0;
    for (const auto &p : params_)
        for (float g : p.tensor.grad())
            total += static_cast<double>(g) * g;
    const float norm = static_cast<float>(std::sqrt(total));
    if (norm > max_norm) {
        const float factor = max_norm / norm;
        for (auto &p : params_) {
            // grad() is const; scale through the node's buffer.
            auto &node = *p.tensor.node();
            for (auto &g : node.grad)
                g *= factor;
        }
    }
    return norm;
}

AdamState
Adam::snapshot() const
{
    AdamState state;
    state.step_count = t_;
    state.first_moments = m_;
    state.second_moments = v_;
    return state;
}

void
Adam::restore(const AdamState &state)
{
    SP_ASSERT(state.first_moments.size() == params_.size() &&
                  state.second_moments.size() == params_.size(),
              "Adam state has %zu/%zu moment vectors, optimizer has "
              "%zu parameters",
              state.first_moments.size(), state.second_moments.size(),
              params_.size());
    for (size_t pi = 0; pi < params_.size(); ++pi) {
        SP_ASSERT(state.first_moments[pi].size() == m_[pi].size() &&
                      state.second_moments[pi].size() == v_[pi].size(),
                  "Adam state size mismatch for parameter %zu", pi);
    }
    t_ = state.step_count;
    m_ = state.first_moments;
    v_ = state.second_moments;
}

}  // namespace sp::nn
