#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace sp {

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    mean_ += delta * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::min() const
{
    return n_ ? min_ : std::numeric_limits<double>::infinity();
}

double
RunningStat::max() const
{
    return n_ ? max_ : -std::numeric_limits<double>::infinity();
}

double
RunningStat::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

void
Distribution::merge(const Distribution &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
}

void
Distribution::clear()
{
    samples_.clear();
    sorted_ = true;
}

double
Distribution::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    SP_ASSERT(p >= 0.0 && p <= 100.0);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
    if (rank > 0)
        --rank;
    rank = std::min(rank, samples_.size() - 1);
    return samples_[rank];
}

double
Distribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

std::string
formatTable(const std::vector<std::string> &headers,
            const std::vector<std::vector<std::string>> &rows)
{
    const size_t cols = headers.size();
    std::vector<size_t> width(cols);
    for (size_t c = 0; c < cols; ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows) {
        SP_ASSERT(row.size() == cols);
        for (size_t c = 0; c < cols; ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    std::ostringstream out;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < cols; ++c) {
            out << "| " << row[c]
                << std::string(width[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };
    auto emitRule = [&] {
        for (size_t c = 0; c < cols; ++c)
            out << "+" << std::string(width[c] + 2, '-');
        out << "+\n";
    };

    emitRule();
    emitRow(headers);
    emitRule();
    for (const auto &row : rows)
        emitRow(row);
    emitRule();
    return out.str();
}

}  // namespace sp
