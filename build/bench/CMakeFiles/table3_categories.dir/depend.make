# Empty dependencies file for table3_categories.
# This may be replaced when dependencies are built.
