#include "fleet/wire.h"

#include <bit>
#include <cstring>

#include "obs/netio.h"

namespace sp::fleet {

namespace {

constexpr size_t kHeaderBytes = 16;

/** crc over (type, len, payload) — the magic/version prefix is framing,
 *  not content, exactly like data::FrameWriter's (kind, len, payload). */
uint32_t
frameCrc(uint16_t type, uint32_t len, const uint8_t *payload)
{
    uint32_t crc = data::crc32(&type, sizeof(type));
    crc = data::crc32(&len, sizeof(len), crc);
    return data::crc32(payload, len, crc);
}

void
put16(uint8_t *at, uint16_t v)
{
    std::memcpy(at, &v, sizeof(v));
}

void
put32(uint8_t *at, uint32_t v)
{
    std::memcpy(at, &v, sizeof(v));
}

uint16_t
get16(const uint8_t *at)
{
    uint16_t v;
    std::memcpy(&v, at, sizeof(v));
    return v;
}

uint32_t
get32(const uint8_t *at)
{
    uint32_t v;
    std::memcpy(&v, at, sizeof(v));
    return v;
}

}  // namespace

bool
sendFrame(int fd, MsgType type, const std::vector<uint8_t> &payload,
          uint64_t *bytes)
{
    uint8_t header[kHeaderBytes];
    const auto len = static_cast<uint32_t>(payload.size());
    put32(header, kWireMagic);
    put16(header + 4, kWireVersion);
    put16(header + 6, static_cast<uint16_t>(type));
    put32(header + 8, len);
    put32(header + 12,
          frameCrc(static_cast<uint16_t>(type), len, payload.data()));
    if (!obs::sendAll(fd, header, sizeof(header)))
        return false;
    if (len != 0 && !obs::sendAll(fd, payload.data(), len))
        return false;
    if (bytes != nullptr)
        *bytes += sizeof(header) + len;
    return true;
}

RecvStatus
recvFrame(int fd, Frame *out, uint64_t *bytes, std::string *err)
{
    const auto fail = [err](RecvStatus status, const char *what) {
        if (err != nullptr)
            *err = what;
        return status;
    };

    uint8_t header[kHeaderBytes];
    const size_t got = obs::recvAll(fd, header, sizeof(header));
    if (got == 0)
        return fail(RecvStatus::Eof, "eof");
    if (got < sizeof(header))
        return fail(RecvStatus::Malformed, "torn header");
    if (get32(header) != kWireMagic)
        return fail(RecvStatus::Malformed, "bad magic");
    if (get16(header + 4) != kWireVersion)
        return fail(RecvStatus::VersionSkew, "frame version skew");
    const uint16_t type = get16(header + 6);
    const uint32_t len = get32(header + 8);
    const uint32_t crc = get32(header + 12);
    if (len > kMaxFramePayload)
        return fail(RecvStatus::Malformed, "oversized payload length");

    out->type = static_cast<MsgType>(type);
    out->payload.resize(len);
    if (len != 0 &&
        obs::recvAll(fd, out->payload.data(), len) != len)
        return fail(RecvStatus::Malformed, "torn payload");
    if (frameCrc(type, len, out->payload.data()) != crc)
        return fail(RecvStatus::Malformed, "crc mismatch");
    if (bytes != nullptr)
        *bytes += kHeaderBytes + len;
    return RecvStatus::Ok;
}

const void *
WireReader::take(size_t len)
{
    if (!ok_ || len > len_ - pos_) {
        ok_ = false;
        return nullptr;
    }
    const void *at = data_ + pos_;
    pos_ += len;
    return at;
}

uint8_t
WireReader::u8()
{
    const void *at = take(1);
    return at == nullptr ? 0 : *static_cast<const uint8_t *>(at);
}

uint16_t
WireReader::u16()
{
    uint16_t v = 0;
    if (const void *at = take(sizeof(v)))
        std::memcpy(&v, at, sizeof(v));
    return v;
}

uint32_t
WireReader::u32()
{
    uint32_t v = 0;
    if (const void *at = take(sizeof(v)))
        std::memcpy(&v, at, sizeof(v));
    return v;
}

uint64_t
WireReader::u64()
{
    uint64_t v = 0;
    if (const void *at = take(sizeof(v)))
        std::memcpy(&v, at, sizeof(v));
    return v;
}

std::string
WireReader::str()
{
    const uint32_t len = u32();
    const void *at = take(len);
    return at == nullptr
               ? std::string()
               : std::string(static_cast<const char *>(at), len);
}

std::vector<uint8_t>
HelloMsg::encode() const
{
    data::PayloadWriter w;
    w.u32(wire_version);
    w.str(node_name);
    return w.bytes();
}

bool
HelloMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    wire_version = r.u32();
    node_name = r.str();
    return r.ok() && r.remaining() == 0;
}

std::vector<uint8_t>
HelloAckMsg::encode() const
{
    data::PayloadWriter w;
    w.u32(node_id);
    w.u64(campaign_seed);
    w.u64(budget);
    w.u64(checkpoint_every);
    w.u8(thompson);
    w.u8(covmap);
    w.u8(harvest);
    w.u32(seed_corpus_size);
    w.u32(lease_gen_seeds);
    w.u64(kernel_seed);
    w.str(kernel_version);
    w.u32(kernel_evolution);
    w.u64(kernel_fingerprint);
    return w.bytes();
}

bool
HelloAckMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    node_id = r.u32();
    campaign_seed = r.u64();
    budget = r.u64();
    checkpoint_every = r.u64();
    thompson = r.u8();
    covmap = r.u8();
    harvest = r.u8();
    seed_corpus_size = r.u32();
    lease_gen_seeds = r.u32();
    kernel_seed = r.u64();
    kernel_version = r.str();
    kernel_evolution = r.u32();
    kernel_fingerprint = r.u64();
    return r.ok() && r.remaining() == 0;
}

std::vector<uint8_t>
LeaseGrantMsg::encode() const
{
    data::PayloadWriter w;
    w.u8(done);
    w.u64(lease_id);
    w.u64(begin);
    w.u64(count);
    w.u64(node_seed);
    w.u32(static_cast<uint32_t>(batch.size()));
    for (const auto &text : batch)
        w.str(text);
    return w.bytes();
}

bool
LeaseGrantMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    done = r.u8();
    lease_id = r.u64();
    begin = r.u64();
    count = r.u64();
    node_seed = r.u64();
    const uint32_t n = r.u32();
    batch.clear();
    for (uint32_t i = 0; i < n && r.ok(); ++i)
        batch.push_back(r.str());
    return r.ok() && r.remaining() == 0;
}

std::vector<uint8_t>
LeaseResultMsg::encode() const
{
    data::PayloadWriter w;
    w.u64(lease_id);
    w.u64(execs);
    w.u32(static_cast<uint32_t>(programs.size()));
    for (const auto &program : programs) {
        w.str(program.text);
        w.u32(static_cast<uint32_t>(program.blocks.size()));
        for (const uint32_t block : program.blocks)
            w.u32(block);
        w.u32(static_cast<uint32_t>(program.edges.size()));
        for (const uint64_t edge : program.edges)
            w.u64(edge);
    }
    w.u32(static_cast<uint32_t>(crashes.size()));
    for (const auto &crash : crashes) {
        w.u32(crash.bug_index);
        w.u64(crash.slot);
        w.str(crash.trigger);
    }
    w.u8(have_cov ? 1 : 0);
    if (have_cov) {
        w.u32(static_cast<uint32_t>(block_deltas.size()));
        for (const auto &[index, delta] : block_deltas) {
            w.u32(index);
            w.u64(delta);
        }
        w.u32(static_cast<uint32_t>(edge_deltas.size()));
        for (const auto &[index, delta] : edge_deltas) {
            w.u32(index);
            w.u64(delta);
        }
        w.u64(stray_edges);
    }
    w.u8(have_policy ? 1 : 0);
    if (have_policy) {
        w.str(policy_name);
        w.u64(std::bit_cast<uint64_t>(pmm_share));
        w.u32(static_cast<uint32_t>(arms.size()));
        for (const auto &arm : arms) {
            w.u32(arm.arm);
            w.u64(arm.pulls);
            w.u64(arm.wins);
        }
    }
    w.u8(have_shard ? 1 : 0);
    if (have_shard) {
        w.u32(static_cast<uint32_t>(shard.size()));
        for (const uint8_t byte : shard)
            w.u8(byte);
    }
    return w.bytes();
}

bool
LeaseResultMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    lease_id = r.u64();
    execs = r.u64();
    const uint32_t nprogs = r.u32();
    programs.clear();
    for (uint32_t i = 0; i < nprogs && r.ok(); ++i) {
        WireProgram program;
        program.text = r.str();
        const uint32_t nblocks = r.u32();
        for (uint32_t j = 0; j < nblocks && r.ok(); ++j)
            program.blocks.push_back(r.u32());
        const uint32_t nedges = r.u32();
        for (uint32_t j = 0; j < nedges && r.ok(); ++j)
            program.edges.push_back(r.u64());
        programs.push_back(std::move(program));
    }
    const uint32_t ncrashes = r.u32();
    crashes.clear();
    for (uint32_t i = 0; i < ncrashes && r.ok(); ++i) {
        WireCrash crash;
        crash.bug_index = r.u32();
        crash.slot = r.u64();
        crash.trigger = r.str();
        crashes.push_back(std::move(crash));
    }
    have_cov = r.u8() != 0;
    block_deltas.clear();
    edge_deltas.clear();
    stray_edges = 0;
    if (have_cov) {
        const uint32_t nblocks = r.u32();
        for (uint32_t i = 0; i < nblocks && r.ok(); ++i) {
            const uint32_t index = r.u32();
            const uint64_t delta = r.u64();
            block_deltas.emplace_back(index, delta);
        }
        const uint32_t nedges = r.u32();
        for (uint32_t i = 0; i < nedges && r.ok(); ++i) {
            const uint32_t index = r.u32();
            const uint64_t delta = r.u64();
            edge_deltas.emplace_back(index, delta);
        }
        stray_edges = r.u64();
    }
    have_policy = r.u8() != 0;
    policy_name.clear();
    pmm_share = 0.0;
    arms.clear();
    if (have_policy) {
        policy_name = r.str();
        pmm_share = std::bit_cast<double>(r.u64());
        const uint32_t narms = r.u32();
        for (uint32_t i = 0; i < narms && r.ok(); ++i) {
            WireArm arm;
            arm.arm = r.u32();
            arm.pulls = r.u64();
            arm.wins = r.u64();
            arms.push_back(arm);
        }
    }
    have_shard = r.u8() != 0;
    shard.clear();
    if (have_shard) {
        const uint32_t len = r.u32();
        if (len > r.remaining()) {
            return false;
        }
        for (uint32_t i = 0; i < len; ++i)
            shard.push_back(r.u8());
    }
    return r.ok() && r.remaining() == 0;
}

std::vector<uint8_t>
ResultAckMsg::encode() const
{
    data::PayloadWriter w;
    w.u8(accepted);
    w.u64(new_programs);
    w.u64(new_crashes);
    return w.bytes();
}

bool
ResultAckMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    accepted = r.u8();
    new_programs = r.u64();
    new_crashes = r.u64();
    return r.ok() && r.remaining() == 0;
}

std::vector<uint8_t>
ErrorMsg::encode() const
{
    data::PayloadWriter w;
    w.str(message);
    return w.bytes();
}

bool
ErrorMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    message = r.str();
    return r.ok() && r.remaining() == 0;
}

}  // namespace sp::fleet
