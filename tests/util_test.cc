// Unit tests for src/util: RNG determinism and distributions, hashing,
// statistics accumulators and table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hash.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sp {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(29);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        counts[rng.weightedIndex(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform)
{
    Rng rng(31);
    std::vector<double> w = {0.0, 0.0};
    std::set<size_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng.weightedIndex(w));
    EXPECT_EQ(seen.size(), 2u);
}

TEST(Rng, SampleIndicesDistinctAndComplete)
{
    Rng rng(37);
    auto picks = rng.sampleIndices(10, 4);
    EXPECT_EQ(picks.size(), 4u);
    std::set<size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 4u);
    for (size_t p : picks)
        EXPECT_LT(p, 10u);

    auto all = rng.sampleIndices(5, 5);
    std::set<size_t> everything(all.begin(), all.end());
    EXPECT_EQ(everything.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(41);
    Rng child = a.fork();
    // Child stream should not replay the parent stream.
    Rng b(41);
    b.next();  // advance like the fork did
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (child.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Hash, Fnv1aStableKnownValue)
{
    // FNV-1a of empty input is the offset basis.
    EXPECT_EQ(fnv1a(std::string_view("")), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    EXPECT_EQ(fnv1a("snowplow"), fnv1a("snowplow"));
}

TEST(Hash, CombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Hash, U64AvalanchesLowBits)
{
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i)
        seen.insert(hashU64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequentialFeed)
{
    // Feeding two shards then merging must equal one accumulator that
    // saw the whole stream (the parallel Welford identity).
    RunningStat a, b, whole;
    const std::vector<double> left = {1.0, 2.5, -3.0, 8.0};
    const std::vector<double> right = {0.5, 12.0, 7.25};
    for (double v : left) {
        a.add(v);
        whole.add(v);
    }
    for (double v : right) {
        b.add(v);
        whole.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-12);
    EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat filled;
    filled.add(3.0);
    filled.add(5.0);

    RunningStat empty;
    RunningStat target = filled;
    target.merge(empty);  // no-op
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 4.0);

    RunningStat fresh;
    fresh.merge(filled);  // adopt
    EXPECT_EQ(fresh.count(), 2u);
    EXPECT_DOUBLE_EQ(fresh.mean(), 4.0);
    EXPECT_DOUBLE_EQ(fresh.min(), 3.0);
    EXPECT_DOUBLE_EQ(fresh.max(), 5.0);

    RunningStat both;
    both.merge(RunningStat{});
    EXPECT_EQ(both.count(), 0u);
    EXPECT_EQ(both.mean(), 0.0);
}

TEST(RunningStat, ClearResetsToEmpty)
{
    RunningStat s;
    s.add(9.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
}

TEST(Distribution, Percentiles)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(1), 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
}

TEST(Distribution, EmptyPercentileIsZero)
{
    Distribution d;
    EXPECT_EQ(d.percentile(50), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(Distribution, PercentileEdgeCases)
{
    Distribution single;
    single.add(42.0);
    EXPECT_DOUBLE_EQ(single.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(single.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(single.percentile(100), 42.0);

    Distribution d;
    for (int i = 10; i >= 1; --i)  // unsorted insertion order
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 10.0);
}

TEST(Distribution, RepeatedQueriesSeeLaterAdds)
{
    // The sort cache must be invalidated by add(): a query, a larger
    // sample, then the same query must reflect the new maximum.
    Distribution d;
    d.add(1.0);
    d.add(2.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 2.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 2.0);  // cached-sort path
    d.add(99.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 99.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
}

TEST(Distribution, MergeAndClear)
{
    Distribution a, b;
    a.add(1.0);
    a.add(3.0);
    b.add(2.0);
    b.add(4.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(100), 4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);

    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.percentile(50), 0.0);

    // Merging an empty distribution is a no-op.
    b.merge(Distribution{});
    EXPECT_EQ(b.count(), 2u);
}

TEST(FormatTable, AlignsColumns)
{
    auto text = formatTable({"name", "value"},
                            {{"alpha", "1"}, {"b", "22222"}});
    // Headers and both rows present, all lines equal width.
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22222"), std::string::npos);
    size_t first_nl = text.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    size_t width = first_nl;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

TEST(Json, ParsesScalarsWithExactIntegers)
{
    EXPECT_TRUE(json::parse("null").value.isNull());
    EXPECT_TRUE(json::parse("true").value.boolean());
    EXPECT_FALSE(json::parse("false").value.boolean(true));

    // Hit counts are uint64 and must survive without rounding through
    // the double payload.
    auto big = json::parse("18446744073709551615");
    ASSERT_TRUE(big.ok()) << big.error;
    EXPECT_EQ(big.value.asUint(), UINT64_MAX);
    auto neg = json::parse("-9223372036854775808");
    ASSERT_TRUE(neg.ok()) << neg.error;
    EXPECT_EQ(neg.value.asInt(), INT64_MIN);
    auto frac = json::parse("2.5e2");
    ASSERT_TRUE(frac.ok());
    EXPECT_DOUBLE_EQ(frac.value.number(), 250.0);
    EXPECT_EQ(frac.value.asInt(), 250);
}

TEST(Json, ParsesStringsWithEscapes)
{
    auto plain = json::parse("\"covmap_window\"");
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(plain.value.str(), "covmap_window");

    auto escaped = json::parse(R"("a\"b\\c\n\tA")");
    ASSERT_TRUE(escaped.ok()) << escaped.error;
    EXPECT_EQ(escaped.value.str(), "a\"b\\c\n\tA");

    // Surrogate pair -> 4-byte UTF-8.
    auto emoji = json::parse(R"("😀")");
    ASSERT_TRUE(emoji.ok()) << emoji.error;
    EXPECT_EQ(emoji.value.str(), "\xf0\x9f\x98\x80");
}

TEST(Json, ParsesArraysAndObjectsPreservingOrder)
{
    auto parsed = json::parse(
        R"({"type":"covmap_window","deltas":[[3,2],[7,1]],"n":0})");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const json::Value &obj = parsed.value;
    ASSERT_TRUE(obj.isObject());
    ASSERT_EQ(obj.members().size(), 3u);
    // Emission order is preserved, not sorted.
    EXPECT_EQ(obj.members()[0].first, "type");
    EXPECT_EQ(obj.members()[1].first, "deltas");
    EXPECT_EQ(obj.find("type")->str(), "covmap_window");

    const json::Value *deltas = obj.find("deltas");
    ASSERT_NE(deltas, nullptr);
    ASSERT_EQ(deltas->array().size(), 2u);
    EXPECT_EQ(deltas->at(0)->at(0)->asUint(), 3u);
    EXPECT_EQ(deltas->at(0)->at(1)->asUint(), 2u);
    EXPECT_EQ(deltas->at(1)->at(0)->asUint(), 7u);
    EXPECT_EQ(deltas->at(2), nullptr);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInput)
{
    EXPECT_FALSE(json::parse("").ok());
    EXPECT_FALSE(json::parse("{").ok());
    EXPECT_FALSE(json::parse("[1,]").ok());
    EXPECT_FALSE(json::parse("{\"a\":}").ok());
    EXPECT_FALSE(json::parse("\"unterminated").ok());
    EXPECT_FALSE(json::parse("nul").ok());
    EXPECT_FALSE(json::parse("1 2").ok());  // trailing garbage
    EXPECT_FALSE(json::parse("-").ok());

    // Depth bomb stops at the recursion cap instead of overflowing.
    std::string deep(4096, '[');
    EXPECT_FALSE(json::parse(deep).ok());

    auto err = json::parse("[1, x]");
    EXPECT_FALSE(err.ok());
    EXPECT_FALSE(err.error.empty());
    EXPECT_GT(err.offset, 0u);
}

}  // namespace
}  // namespace sp
