// Tests for the extensions: the asynchronous PMM localizer (§3.4), the
// call-insertion localization heads (§6), and the new nn ops they use.

#include <gtest/gtest.h>

#include <cmath>

#include "core/insertion.h"
#include "core/snowplow.h"
#include "kernel/subsystems.h"
#include "nn/optimizer.h"
#include "prog/gen.h"

namespace sp::core {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 10;
        params.num_syscalls = 10;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

TEST(NnExt, FlattenPreservesValuesAndGradient)
{
    nn::Tensor m = nn::Tensor::fromMatrix({1, 2, 3, 4}, 2, 2,
                                          /*requires_grad=*/true);
    nn::Tensor flat = nn::flatten(m);
    EXPECT_EQ(flat.rows(), 4);
    EXPECT_FALSE(flat.isMatrix());
    EXPECT_FLOAT_EQ(flat.at(3), 4.0f);

    nn::sumAll(nn::mul(flat, flat)).backward();
    EXPECT_FLOAT_EQ(m.grad()[0], 2.0f);
    EXPECT_FLOAT_EQ(m.grad()[3], 8.0f);
}

TEST(NnExt, CrossEntropyKnownValueAndGradient)
{
    // Uniform logits over 4 classes: loss = log(4).
    nn::Tensor logits = nn::Tensor::fromMatrix({0, 0, 0, 0}, 1, 4,
                                               /*requires_grad=*/true);
    nn::Tensor loss = nn::crossEntropyRows(logits, {2});
    EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
    loss.backward();
    // d/dlogit = softmax - onehot = 0.25 except target 0.25-1.
    EXPECT_NEAR(logits.grad()[0], 0.25f, 1e-5f);
    EXPECT_NEAR(logits.grad()[2], -0.75f, 1e-5f);
}

TEST(NnExt, CrossEntropyTrainsAClassifier)
{
    Rng rng(3);
    nn::Mlp mlp(rng, {2, 16, 3}, "clf");
    nn::Adam opt(mlp.parameters(), 0.02f);
    // Three linearly separable clusters.
    std::vector<float> xs = {0, 0, 1, 0, 0, 1};
    std::vector<int32_t> ys = {0, 1, 2};
    nn::Tensor x = nn::Tensor::fromMatrix(xs, 3, 2);
    float final_loss = 1e9f;
    for (int step = 0; step < 150; ++step) {
        mlp.zeroGrad();
        auto loss = nn::crossEntropyRows(mlp.forward(x), ys);
        loss.backward();
        opt.step();
        final_loss = loss.item();
    }
    EXPECT_LT(final_loss, 0.1f);
}

TEST(AsyncLocalizer, EventuallyMatchesSyncPredictions)
{
    const auto &kernel = testKernel();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 2;
    Pmm model(config);
    InferenceService service(model, 2);

    // localizeWithResult is the direct model path (the random-vs-model
    // arbitration lives in the fuzz loop's policy now).
    SnowplowOptions opts;
    PmmLocalizer sync_localizer(kernel, model, opts);
    auto landed_cache = std::make_shared<PredictionCache>(64);
    AsyncPmmLocalizer async_localizer(kernel, service, opts,
                                      landed_cache);

    Rng rng(5);
    auto program = prog::generateProg(rng, kernel.table());
    exec::Executor executor(kernel);
    auto result = executor.run(program);

    Rng rng_a(1), rng_b(1);
    auto expected = sync_localizer.localizeWithResult(program, result,
                                                      rng_a, 4);
    // First async call submits and answers with the fallback; polling
    // until the prediction lands must converge to the sync answer.
    std::vector<mut::ArgLocation> got;
    for (int attempt = 0; attempt < 200; ++attempt) {
        got = async_localizer.localizeWithResult(program, result, rng_b,
                                                 4);
        if (async_localizer.answeredFromModel() > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GT(async_localizer.answeredFromModel(), 0u);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].call_index, expected[i].call_index);
        EXPECT_EQ(got[i].point.path, expected[i].point.path);
    }
    EXPECT_GT(async_localizer.answeredWhilePending(), 0u);
    EXPECT_EQ(async_localizer.submitted(), 1u);

    // The landing call answers from the ranked sites directly, not
    // through a counted cache lookup — every lookup so far was a
    // pending-side miss, so no hit may be on the books yet.
    EXPECT_EQ(landed_cache->hits(), 0u);
    const uint64_t misses_after_landing = landed_cache->misses();
    got = async_localizer.localizeWithResult(program, result, rng_b, 4);
    ASSERT_EQ(got.size(), expected.size());
    EXPECT_EQ(landed_cache->hits(), 1u);
    EXPECT_EQ(landed_cache->misses(), misses_after_landing);
}

TEST(AsyncLocalizer, FuzzerIntegrationRuns)
{
    const auto &kernel = testKernel();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 2;
    Pmm model(config);
    InferenceService service(model, 2);

    fuzz::FuzzOptions opts;
    opts.exec_budget = 1500;
    opts.seed = 3;
    opts.seed_corpus_size = 12;
    auto fuzzer = makeAsyncSnowplowFuzzer(kernel, service, opts);
    auto report = fuzzer->run();
    EXPECT_EQ(report.execs, 1500u);
    EXPECT_GT(report.final_edges, 50u);
}

TEST(Insertion, DatasetCollectsLabeledExamples)
{
    const auto &kernel = testKernel();
    InsertionDatasetOptions opts;
    opts.corpus_size = 40;
    opts.insertions_per_base = 40;
    auto dataset = collectInsertionDataset(kernel, opts);
    EXPECT_GT(dataset.successful_insertions, 10u);
    EXPECT_FALSE(dataset.train.empty());
    for (const auto &example : dataset.train) {
        ASSERT_LT(example.base_index, dataset.bases.size());
        EXPECT_LT(example.position,
                  dataset.bases[example.base_index].calls.size());
        EXPECT_LT(example.syscall_id, kernel.table().decls.size());
        EXPECT_FALSE(example.targets.empty());
    }
}

TEST(Insertion, ModelForwardShapes)
{
    const auto &kernel = testKernel();
    InsertionDatasetOptions opts;
    opts.corpus_size = 20;
    opts.insertions_per_base = 30;
    auto dataset = collectInsertionDataset(kernel, opts);
    ASSERT_FALSE(dataset.train.empty());

    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 1;
    InsertionModel model(config);

    const auto &example = dataset.train.front();
    const auto &base = dataset.bases[example.base_index];
    auto query = graph::buildQueryGraph(
        kernel, base, dataset.base_results[example.base_index],
        example.targets);
    auto encoded = graph::encodeGraph(kernel, query);
    std::vector<int32_t> calls;
    for (int32_t i = 0; i < encoded.num_nodes; ++i)
        if (encoded.node_kind[static_cast<size_t>(i)] ==
            static_cast<int32_t>(graph::NodeKind::Syscall))
            calls.push_back(i);

    auto [pos_logits, var_logits] = model.forward(encoded, calls);
    EXPECT_EQ(static_cast<size_t>(pos_logits.rows()), calls.size());
    EXPECT_EQ(var_logits.rows(), 1);
    EXPECT_EQ(var_logits.cols(), graph::EncodeVocab::kSyscallVocab);
}

TEST(Insertion, LearnsBetterThanRandom)
{
    const auto &kernel = testKernel();
    InsertionDatasetOptions opts;
    opts.corpus_size = 60;
    opts.insertions_per_base = 60;
    auto dataset = collectInsertionDataset(kernel, opts);
    if (dataset.train.size() < 30 || dataset.eval.size() < 10)
        GTEST_SKIP() << "not enough insertion data";

    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 1;
    InsertionModel model(config);
    InsertionTrainOptions train_opts;
    train_opts.epochs = 4;
    auto learned = trainInsertionModel(model, dataset, train_opts);
    auto random = evaluateRandomInsertion(dataset, dataset.eval, 1);

    // The variant head should clearly beat random guessing.
    EXPECT_GT(learned.variant_top5, random.variant_top5);
    EXPECT_GT(learned.variant_top1 + 1e-9, random.variant_top1);
}

TEST(PredictionCache, LookupInsertAndTallies)
{
    PredictionCache cache(8);
    std::vector<mut::ArgLocation> sites;
    EXPECT_FALSE(cache.lookup(1, &sites));
    EXPECT_EQ(cache.misses(), 1u);

    mut::ArgLocation site;
    site.call_index = 7;
    cache.insert(1, {site});
    EXPECT_TRUE(cache.lookup(1, &sites));
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].call_index, 7u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(PredictionCache, WholesaleEvictionAtCapacity)
{
    PredictionCache cache(3);
    for (uint64_t key = 0; key < 3; ++key)
        cache.insert(key, {});
    EXPECT_EQ(cache.size(), 3u);
    // Re-inserting a resident key never evicts.
    cache.insert(1, {});
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.evictions(), 0u);
    // The 4th distinct key clears everything first.
    cache.insert(99, {});
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 3u);
    EXPECT_FALSE(cache.lookup(0, nullptr));
    EXPECT_TRUE(cache.lookup(99, nullptr));
}

TEST(PredictionCache, SharedAcrossConcurrentLocalizers)
{
    auto cache = std::make_shared<PredictionCache>(1024);
    constexpr size_t kThreads = 4;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            for (uint64_t i = 0; i < 200; ++i) {
                const uint64_t key = i % 50;
                std::vector<mut::ArgLocation> sites;
                if (!cache->lookup(key, &sites)) {
                    mut::ArgLocation site;
                    site.call_index = static_cast<uint32_t>(t);
                    cache->insert(key, {site});
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(cache->size(), 50u);
    EXPECT_EQ(cache->hits() + cache->misses(), kThreads * 200u);
    EXPECT_GT(cache->hits(), cache->misses());
}

TEST(PmmLocalizer, EvictsWholesaleAtCapacity)
{
    const auto &kernel = testKernel();
    PmmConfig config;
    config.dim = 16;
    config.token_dim = 8;
    config.gnn_layers = 1;
    Pmm model(config);

    SnowplowOptions opts;  // every query goes through the cache
    opts.cache_capacity = 3;
    PmmLocalizer localizer(kernel, model, opts);

    Rng gen(17), rng(18);
    exec::Executor executor(kernel);
    auto programs = prog::generateCorpus(gen, kernel.table(), 5);
    ASSERT_GE(programs.size(), 4u);
    for (size_t i = 0; i < 3; ++i) {
        auto result = executor.run(programs[i]);
        localizer.localizeWithResult(programs[i], result, rng, 4);
    }
    EXPECT_EQ(localizer.cacheSize(), 3u);
    EXPECT_EQ(localizer.cache().evictions(), 0u);

    // A 4th distinct base clears the cache wholesale, then lands.
    auto result = executor.run(programs[3]);
    localizer.localizeWithResult(programs[3], result, rng, 4);
    EXPECT_EQ(localizer.cacheSize(), 1u);
    EXPECT_EQ(localizer.cache().evictions(), 3u);

    // Re-querying the same base is a pure cache hit.
    const uint64_t hits_before = localizer.cache().hits();
    localizer.localizeWithResult(programs[3], result, rng, 4);
    EXPECT_EQ(localizer.cache().hits(), hits_before + 1);
    EXPECT_EQ(localizer.cacheSize(), 1u);
}

}  // namespace
}  // namespace sp::core
