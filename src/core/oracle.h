/**
 * @file
 * The oracle localizer: a perfect white-box analysis upper bound.
 *
 * Instead of a learned model, this localizer reads the simulated
 * kernel's *actual* branch predicates: for every frontier (not-taken)
 * branch of the base test's coverage it resolves which argument slot
 * the guard tests and returns those arguments. It plays the role the
 * symbolic-execution engines play in hybrid fuzzers like HFL (§7 of
 * the paper): exact, but in the real world orders of magnitude more
 * expensive than a model inference — here it is used as the *ceiling*
 * against which PMM's accuracy/speed trade-off is judged (see
 * bench/ablations).
 */
#ifndef SP_CORE_ORACLE_H
#define SP_CORE_ORACLE_H

#include "exec/executor.h"
#include "kernel/kernel.h"
#include "mutate/localizer.h"

namespace sp::core {

/** Exact frontier-guard argument localizer. */
class OracleLocalizer : public mut::Localizer
{
  public:
    explicit OracleLocalizer(const kern::Kernel &kernel);

    std::vector<mut::ArgLocation> localize(const prog::Prog &prog,
                                           Rng &rng,
                                           size_t max_sites) override;

    std::vector<mut::ArgLocation>
    localizeWithResult(const prog::Prog &prog,
                       const exec::ExecResult &result, Rng &rng,
                       size_t max_sites) override;

  private:
    const kern::Kernel &kernel_;
    mut::RandomLocalizer fallback_;
    exec::Executor probe_;
};

}  // namespace sp::core

#endif  // SP_CORE_ORACLE_H
