#include "fuzz/fuzzer.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "prog/gen.h"
#include "util/logging.h"

namespace sp::fuzz {

namespace {

exec::ExecOptions
execOptionsFor(const FuzzOptions &opts)
{
    exec::ExecOptions exec_opts;
    exec_opts.deterministic = !opts.noisy;
    exec_opts.noise_seed = opts.seed ^ 0xabcdef;
    return exec_opts;
}

const char *
laneName(MutationLane lane)
{
    switch (lane) {
      case MutationLane::Seed:
        return "seed";
      case MutationLane::Argument:
        return "arg";
      case MutationLane::Structural:
        return "structural";
    }
    return "?";
}

/** Registry handles for the fuzz-loop counters (looked up once). */
struct FuzzMetrics
{
    obs::Counter &execs;
    obs::Counter &arg_mutants;
    obs::Counter &arg_admitted;
    obs::Counter &structural_mutants;
    obs::Counter &structural_admitted;
    obs::Counter &seed_programs;

    static FuzzMetrics &
    get()
    {
        auto &reg = obs::Registry::global();
        static FuzzMetrics metrics{
            reg.counter("fuzz.execs"),
            reg.counter("fuzz.mutants.arg"),
            reg.counter("fuzz.mutants.arg_admitted"),
            reg.counter("fuzz.mutants.structural"),
            reg.counter("fuzz.mutants.structural_admitted"),
            reg.counter("fuzz.seed_programs"),
        };
        return metrics;
    }
};

}  // namespace

Fuzzer::Fuzzer(const kern::Kernel &kernel, FuzzOptions options,
               std::unique_ptr<mut::Localizer> localizer)
    : kernel_(kernel), opts_(std::move(options)),
      localizer_(std::move(localizer)),
      mutator_(kernel.table(), opts_.mutator),
      executor_(kernel, execOptionsFor(opts_)), crashes_(kernel),
      rng_(opts_.seed)
{
    SP_ASSERT(localizer_ != nullptr, "fuzzer needs a localizer");
}

void
Fuzzer::executeOne(const prog::Prog &program, MutationLane lane,
                   const mut::ArgLocation *site)
{
    const size_t edges_before = corpus_.totalCoverage().edgeCount();
    auto result = executor_.run(program);
    ++execs_;
    if (result.crashed)
        crashes_.record(result.bug_index, program, execs_);
    const bool admitted = corpus_.maybeAdd(program, result, execs_);
    const size_t new_edges =
        corpus_.totalCoverage().edgeCount() - edges_before;

    FuzzMetrics &metrics = FuzzMetrics::get();
    metrics.execs.inc();
    switch (lane) {
      case MutationLane::Seed:
        metrics.seed_programs.inc();
        break;
      case MutationLane::Argument:
        metrics.arg_mutants.inc();
        if (admitted)
            metrics.arg_admitted.inc();
        break;
      case MutationLane::Structural:
        metrics.structural_mutants.inc();
        if (admitted)
            metrics.structural_admitted.inc();
        break;
    }
    if (auto *sink = obs::sink()) {
        sink->event(
            "mutation_outcome",
            {{"execs", execs_},
             {"lane", laneName(lane)},
             {"calls", program.calls.size()},
             {"admitted", admitted},
             {"crashed", result.crashed},
             {"new_edges", new_edges},
             {"site_call",
              site ? static_cast<int64_t>(site->call_index)
                   : int64_t{-1}}});
    }
    maybeCheckpoint();
}

void
Fuzzer::maybeCheckpoint()
{
    if (execs_ % opts_.checkpoint_every != 0)
        return;
    Checkpoint cp;
    cp.execs = execs_;
    cp.edges = corpus_.totalCoverage().edgeCount();
    cp.blocks = corpus_.totalCoverage().blockCount();
    cp.crashes = crashes_.uniqueCrashes();
    timeline_.push_back(cp);

    if (obs::timingEnabled()) {
        static obs::Histogram &delta_hist =
            obs::Registry::global().histogram(
                "fuzz.checkpoint.edge_delta");
        delta_hist.record(
            static_cast<double>(cp.edges - last_checkpoint_edges_));
    }
    if (auto *sink = obs::sink()) {
        sink->event("coverage_checkpoint",
                    {{"execs", cp.execs},
                     {"edges", cp.edges},
                     {"blocks", cp.blocks},
                     {"crashes", cp.crashes},
                     {"edge_delta", cp.edges - last_checkpoint_edges_},
                     {"corpus_size", corpus_.size()}});
    }
    last_checkpoint_edges_ = cp.edges;
}

void
Fuzzer::seedCorpus()
{
    auto seeds = prog::generateCorpus(rng_, kernel_.table(),
                                      opts_.seed_corpus_size,
                                      opts_.mutator.gen);
    for (const auto &seed : seeds)
        executeOne(seed, MutationLane::Seed);
}

FuzzReport
Fuzzer::run()
{
    return runUntil([](const Fuzzer &) { return false; });
}

FuzzReport
Fuzzer::runUntil(const std::function<bool(const Fuzzer &)> &stop)
{
    const auto wall_start = std::chrono::steady_clock::now();
    const uint64_t execs_start = execs_;

    if (corpus_.empty())
        seedCorpus();

    while (execs_ < opts_.exec_budget && !stop(*this)) {
        if (corpus_.empty()) {
            // Everything crashed at seed time; regenerate.
            seedCorpus();
            continue;
        }
        // Copy the picked entry out: executing mutants below can grow
        // the corpus vector and invalidate references into it.
        prog::Prog base_program;
        exec::ExecResult base_result;
        {
            const CorpusEntry &picked =
                opts_.choose_test ? opts_.choose_test(corpus_, rng_)
                                  : corpus_.pick(rng_);
            base_program.calls = picked.program.calls;
            base_result = picked.result;
        }

        // Argument mutations at localized sites. The base program is
        // copied once per instantiated mutant.
        auto sites = localizer_->localizeWithResult(
            base_program, base_result, rng_, opts_.max_sites_per_base);
        for (const auto &site : sites) {
            for (size_t m = 0;
                 m < opts_.mutations_per_site &&
                 execs_ < opts_.exec_budget;
                 ++m) {
                prog::Prog mutant;
                mutant.calls = base_program.calls;
                if (!mutator_.instantiateArgMutation(mutant, site, rng_))
                    break;
                executeOne(mutant, MutationLane::Argument, &site);
            }
            if (execs_ >= opts_.exec_budget || stop(*this))
                break;
        }

        // Structural mutations (insertion/removal) with their own
        // selector weights — the "existing random mutators" lane.
        for (size_t s = 0; s < opts_.structural_mutations_per_base &&
                           execs_ < opts_.exec_budget;
             ++s) {
            prog::Prog mutant;
            mutant.calls = base_program.calls;
            switch (mutator_.selectType(rng_, mutant)) {
              case mut::MutationType::ArgumentMutation: {
                // Selector landed on arguments: one random-site mutant
                // (the fallback lane even when a learned localizer is
                // installed, §3.4).
                mut::RandomLocalizer fallback;
                auto fallback_sites =
                    fallback.localize(mutant, rng_, 1);
                if (!fallback_sites.empty()) {
                    mutator_.instantiateArgMutation(
                        mutant, fallback_sites[0], rng_);
                }
                break;
              }
              case mut::MutationType::CallInsertion:
                mutator_.insertCall(mutant, rng_);
                break;
              case mut::MutationType::CallRemoval:
                mutator_.removeCall(mutant, rng_);
                break;
            }
            executeOne(mutant, MutationLane::Structural);
        }
    }

    FuzzReport report;
    report.timeline = timeline_;
    report.final_edges = corpus_.totalCoverage().edgeCount();
    report.final_blocks = corpus_.totalCoverage().blockCount();
    report.execs = execs_;
    report.corpus_size = corpus_.size();

    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const uint64_t campaign_execs = execs_ - execs_start;
    const double execs_per_sec =
        wall_sec > 0.0 ? static_cast<double>(campaign_execs) / wall_sec
                       : 0.0;
    FuzzMetrics &metrics = FuzzMetrics::get();
    auto rate = [](const obs::Counter &hit, const obs::Counter &total) {
        return total.value() == 0
                   ? 0.0
                   : static_cast<double>(hit.value()) /
                         static_cast<double>(total.value());
    };
    auto &reg = obs::Registry::global();
    reg.gauge("fuzz.execs_per_sec").set(execs_per_sec);
    reg.gauge("fuzz.mutant_success.arg")
        .set(rate(metrics.arg_admitted, metrics.arg_mutants));
    reg.gauge("fuzz.mutant_success.structural")
        .set(rate(metrics.structural_admitted,
                  metrics.structural_mutants));
    if (auto *sink = obs::sink()) {
        sink->event("campaign_summary",
                    {{"execs", campaign_execs},
                     {"wall_sec", wall_sec},
                     {"execs_per_sec", execs_per_sec},
                     {"final_edges", report.final_edges},
                     {"final_blocks", report.final_blocks},
                     {"corpus_size", report.corpus_size},
                     {"unique_crashes", crashes_.uniqueCrashes()},
                     {"arg_mutants", metrics.arg_mutants.value()},
                     {"structural_mutants",
                      metrics.structural_mutants.value()}});
    }
    return report;
}

}  // namespace sp::fuzz
