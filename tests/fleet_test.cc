/**
 * @file
 * Fabric tests: wire-protocol round-trips and hardening (torn frames,
 * oversized lengths, CRC mismatches, version skew), bound-port
 * reporting, lease-grid merge invariants (node-count and arrival-order
 * independence), coordinator+node in-process drains, lease re-issue
 * after a mid-campaign node death, and fleet-wide crash dedup.
 */
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/format.h"
#include "fleet/aggregate.h"
#include "fleet/coordinator.h"
#include "fleet/node.h"
#include "fleet/wire.h"
#include "kernel/subsystems.h"
#include "obs/netio.h"
#include "obs/statusd.h"
#include "prog/gen.h"
#include "prog/serialize.h"
#include "util/rng.h"

#include "gtest/gtest.h"

namespace sp::fleet {
namespace {

kern::Kernel
testKernel()
{
    kern::KernelGenParams params;
    params.seed = 2024;
    return kern::buildBaseKernel(params);
}

/** A representative fully-populated lease result. */
LeaseResultMsg
sampleResult(uint64_t lease_id)
{
    LeaseResultMsg msg;
    msg.lease_id = lease_id;
    msg.execs = 500;
    WireProgram program;
    program.text = "r0 = open(\"/tmp/x\", 1)\n";
    program.blocks = {1, 2, 7};
    program.edges = {0x100000002ull, 0x200000007ull};
    msg.programs.push_back(program);
    WireCrash crash;
    crash.bug_index = 3;
    crash.slot = 512;
    crash.trigger = program.text;
    msg.crashes.push_back(crash);
    msg.have_cov = true;
    msg.block_deltas = {{1, 10}, {2, 4}};
    msg.edge_deltas = {{0, 3}};
    msg.stray_edges = 2;
    msg.have_policy = true;
    msg.policy_name = "thompson";
    msg.pmm_share = 0.25;
    msg.arms = {{0, 100, 12}, {3, 50, 9}};
    msg.have_shard = true;
    msg.shard = {0xde, 0xad, 0xbe, 0xef};
    return msg;
}

TEST(FleetWire, MessageCodecsRoundTrip)
{
    HelloAckMsg ack;
    ack.node_id = 7;
    ack.campaign_seed = 42;
    ack.budget = 6000;
    ack.checkpoint_every = 500;
    ack.thompson = 1;
    ack.harvest = 1;
    ack.kernel_version = "6.8";
    ack.kernel_fingerprint = 0xfeedfacecafebeefull;
    HelloAckMsg ack2;
    ASSERT_TRUE(ack2.decode(ack.encode()));
    EXPECT_EQ(ack2.node_id, ack.node_id);
    EXPECT_EQ(ack2.campaign_seed, ack.campaign_seed);
    EXPECT_EQ(ack2.budget, ack.budget);
    EXPECT_EQ(ack2.thompson, ack.thompson);
    EXPECT_EQ(ack2.kernel_version, ack.kernel_version);
    EXPECT_EQ(ack2.kernel_fingerprint, ack.kernel_fingerprint);

    LeaseGrantMsg grant;
    grant.lease_id = 9;
    grant.begin = 1500;
    grant.count = 500;
    grant.node_seed = 0x1234;
    grant.batch = {"prog a", "prog b"};
    LeaseGrantMsg grant2;
    ASSERT_TRUE(grant2.decode(grant.encode()));
    EXPECT_EQ(grant2.lease_id, grant.lease_id);
    EXPECT_EQ(grant2.begin, grant.begin);
    EXPECT_EQ(grant2.batch, grant.batch);

    const LeaseResultMsg msg = sampleResult(9);
    LeaseResultMsg msg2;
    ASSERT_TRUE(msg2.decode(msg.encode()));
    EXPECT_EQ(msg2.lease_id, msg.lease_id);
    ASSERT_EQ(msg2.programs.size(), 1u);
    EXPECT_EQ(msg2.programs[0].text, msg.programs[0].text);
    EXPECT_EQ(msg2.programs[0].blocks, msg.programs[0].blocks);
    EXPECT_EQ(msg2.programs[0].edges, msg.programs[0].edges);
    ASSERT_EQ(msg2.crashes.size(), 1u);
    EXPECT_EQ(msg2.crashes[0].bug_index, 3u);
    EXPECT_TRUE(msg2.have_cov);
    EXPECT_EQ(msg2.block_deltas, msg.block_deltas);
    EXPECT_EQ(msg2.stray_edges, 2u);
    EXPECT_TRUE(msg2.have_policy);
    EXPECT_DOUBLE_EQ(msg2.pmm_share, 0.25);
    ASSERT_EQ(msg2.arms.size(), 2u);
    EXPECT_EQ(msg2.arms[1].pulls, 50u);
    EXPECT_TRUE(msg2.have_shard);
    EXPECT_EQ(msg2.shard, msg.shard);
}

TEST(FleetWire, DecodeRejectsTruncatedPayloads)
{
    // Every truncation of a valid payload must fail cleanly (WireReader
    // trips ok(), never asserts): the peer wrote garbage, not us.
    const std::vector<uint8_t> good = sampleResult(1).encode();
    for (size_t len = 0; len < good.size(); ++len) {
        LeaseResultMsg msg;
        const std::vector<uint8_t> torn(good.begin(),
                                        good.begin() + len);
        EXPECT_FALSE(msg.decode(torn)) << "accepted at len " << len;
    }
    // Trailing junk is equally rejected (remaining() != 0).
    std::vector<uint8_t> padded = good;
    padded.push_back(0);
    LeaseResultMsg msg;
    EXPECT_FALSE(msg.decode(padded));
}

TEST(FleetWire, FrameRoundTripOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::vector<uint8_t> payload = sampleResult(5).encode();
    uint64_t tx = 0;
    ASSERT_TRUE(sendFrame(fds[0], MsgType::LeaseResult, payload, &tx));
    EXPECT_EQ(tx, payload.size() + 16);
    Frame frame;
    uint64_t rx = 0;
    ASSERT_EQ(recvFrame(fds[1], &frame, &rx), RecvStatus::Ok);
    EXPECT_EQ(rx, tx);
    EXPECT_EQ(frame.type, MsgType::LeaseResult);
    EXPECT_EQ(frame.payload, payload);
    ::close(fds[0]);
    ::close(fds[1]);
}

/** Build a raw frame header by hand (hardening-test fixture). */
std::vector<uint8_t>
rawHeader(uint32_t magic, uint16_t version, uint16_t type, uint32_t len,
          uint32_t crc)
{
    std::vector<uint8_t> h(16);
    std::memcpy(h.data() + 0, &magic, 4);
    std::memcpy(h.data() + 4, &version, 2);
    std::memcpy(h.data() + 6, &type, 2);
    std::memcpy(h.data() + 8, &len, 4);
    std::memcpy(h.data() + 12, &crc, 4);
    return h;
}

uint32_t
frameCrcOf(uint16_t type, const std::vector<uint8_t> &payload)
{
    const auto len = static_cast<uint32_t>(payload.size());
    uint32_t crc = data::crc32(&type, sizeof(type));
    crc = data::crc32(&len, sizeof(len), crc);
    return data::crc32(payload.data(), payload.size(), crc);
}

TEST(FleetWire, RecvRejectsEveryFrameDefect)
{
    const auto roundtrip = [](const std::vector<uint8_t> &bytes,
                              bool close_after) {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        EXPECT_TRUE(obs::sendAll(fds[0], bytes.data(), bytes.size()));
        if (close_after)
            ::close(fds[0]);
        Frame frame;
        std::string err;
        const RecvStatus status = recvFrame(fds[1], &frame, nullptr,
                                            &err);
        if (!close_after)
            ::close(fds[0]);
        ::close(fds[1]);
        return std::make_pair(status, err);
    };

    // Clean EOF: peer closed before any header byte.
    EXPECT_EQ(roundtrip({}, true).first, RecvStatus::Eof);

    // Torn header: fewer than 16 bytes, then close.
    EXPECT_EQ(roundtrip({0x53, 0x50, 0x46}, true).first,
              RecvStatus::Malformed);

    // Bad magic.
    EXPECT_EQ(roundtrip(rawHeader(0xdeadbeef, kWireVersion, 1, 0,
                                  frameCrcOf(1, {})),
                        true)
                  .first,
              RecvStatus::Malformed);

    // Version skew: well-formed header, incompatible peer.
    EXPECT_EQ(roundtrip(rawHeader(kWireMagic, kWireVersion + 1, 1, 0,
                                  frameCrcOf(1, {})),
                        true)
                  .first,
              RecvStatus::VersionSkew);

    // Oversized declared length: rejected before any allocation.
    EXPECT_EQ(roundtrip(rawHeader(kWireMagic, kWireVersion, 1,
                                  kMaxFramePayload + 1, 0),
                        true)
                  .first,
              RecvStatus::Malformed);

    // Torn payload: header promises 100 bytes, stream delivers 3.
    {
        std::vector<uint8_t> bytes =
            rawHeader(kWireMagic, kWireVersion, 1, 100, 0);
        bytes.insert(bytes.end(), {1, 2, 3});
        EXPECT_EQ(roundtrip(bytes, true).first, RecvStatus::Malformed);
    }

    // CRC mismatch: full frame, one payload bit flipped.
    {
        std::vector<uint8_t> payload = {10, 20, 30};
        std::vector<uint8_t> bytes =
            rawHeader(kWireMagic, kWireVersion, 1,
                      static_cast<uint32_t>(payload.size()),
                      frameCrcOf(1, payload));
        payload[1] ^= 0x40;
        bytes.insert(bytes.end(), payload.begin(), payload.end());
        const auto [status, err] = roundtrip(bytes, true);
        EXPECT_EQ(status, RecvStatus::Malformed);
        EXPECT_EQ(err, "crc mismatch");
    }
}

TEST(FleetNet, ListenersReportBoundEphemeralPort)
{
    // Satellite 1: both the extracted TcpListener and everything built
    // on it surface the kernel-chosen port when constructed with 0.
    obs::TcpListener listener(0);
    EXPECT_NE(listener.port(), 0u);

    obs::StatusServer status(0);
    EXPECT_NE(status.port(), 0u);
    EXPECT_NE(status.port(), listener.port());

    const kern::Kernel kernel = testKernel();
    CoordinatorOptions opts;
    opts.budget = 100;
    opts.serve_status = false;
    Coordinator coordinator(kernel, opts);
    EXPECT_NE(coordinator.port(), 0u);
}

TEST(FleetNet, CoordinatorSurvivesHostilePeers)
{
    const kern::Kernel kernel = testKernel();
    CoordinatorOptions opts;
    opts.budget = 200;
    opts.checkpoint_every = 100;
    opts.serve_status = false;
    opts.stop_grace_ms = 0;
    Coordinator coordinator(kernel, opts);

    // Peer 1: raw garbage. The coordinator must drop the connection
    // without wedging (we observe the drop as EOF on our side).
    {
        const int fd = obs::connectTcp("127.0.0.1", coordinator.port());
        ASSERT_GE(fd, 0);
        const char junk[] = "GET / HTTP/1.0\r\n\r\n";
        ASSERT_TRUE(obs::sendAll(fd, junk, sizeof(junk)));
        // Dropped, no reply: clean FIN (0) or RST (-1, the kernel's
        // answer when our unread junk was still in the peer's buffer).
        char byte;
        EXPECT_LE(::recv(fd, &byte, 1, 0), 0);
        ::close(fd);
    }

    // Peer 2: version-skewed frame header. Still parseable, so the
    // coordinator explains itself with an Error frame before closing.
    {
        const int fd = obs::connectTcp("127.0.0.1", coordinator.port());
        ASSERT_GE(fd, 0);
        const std::vector<uint8_t> header =
            rawHeader(kWireMagic, kWireVersion + 7, 1, 0,
                      frameCrcOf(1, {}));
        ASSERT_TRUE(obs::sendAll(fd, header.data(), header.size()));
        Frame reply;
        ASSERT_EQ(recvFrame(fd, &reply), RecvStatus::Ok);
        EXPECT_EQ(reply.type, MsgType::Error);
        ErrorMsg msg;
        ASSERT_TRUE(msg.decode(reply.payload));
        EXPECT_NE(msg.message.find("skew"), std::string::npos);
        ::close(fd);
    }

    // Peer 3: version skew in the Hello body (frame v1, node v99).
    {
        const int fd = obs::connectTcp("127.0.0.1", coordinator.port());
        ASSERT_GE(fd, 0);
        HelloMsg hello;
        hello.wire_version = 99;
        hello.node_name = "time-traveler";
        ASSERT_TRUE(sendFrame(fd, MsgType::Hello, hello.encode()));
        Frame reply;
        ASSERT_EQ(recvFrame(fd, &reply), RecvStatus::Ok);
        EXPECT_EQ(reply.type, MsgType::Error);
        ::close(fd);
    }

    // Peer 4: lease request before Hello — rejected, not granted.
    {
        const int fd = obs::connectTcp("127.0.0.1", coordinator.port());
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(sendFrame(fd, MsgType::LeaseRequest, {}));
        Frame reply;
        ASSERT_EQ(recvFrame(fd, &reply), RecvStatus::Ok);
        EXPECT_EQ(reply.type, MsgType::Error);
        ::close(fd);
    }

    // After all that abuse a well-behaved peer still gets served.
    {
        const int fd = obs::connectTcp("127.0.0.1", coordinator.port());
        ASSERT_GE(fd, 0);
        HelloMsg hello;
        hello.node_name = "good-citizen";
        ASSERT_TRUE(sendFrame(fd, MsgType::Hello, hello.encode()));
        Frame reply;
        ASSERT_EQ(recvFrame(fd, &reply), RecvStatus::Ok);
        ASSERT_EQ(reply.type, MsgType::HelloAck);
        HelloAckMsg ack;
        ASSERT_TRUE(ack.decode(reply.payload));
        EXPECT_EQ(ack.budget, 200u);
        ASSERT_TRUE(sendFrame(fd, MsgType::LeaseRequest, {}));
        ASSERT_EQ(recvFrame(fd, &reply), RecvStatus::Ok);
        ASSERT_EQ(reply.type, MsgType::LeaseGrant);
        LeaseGrantMsg grant;
        ASSERT_TRUE(grant.decode(reply.payload));
        EXPECT_EQ(grant.count, 100u);
        ASSERT_TRUE(sendFrame(fd, MsgType::Bye, {}));
        ::close(fd);
    }

    coordinator.stop();
    const CoordinatorStats stats = coordinator.stats();
    EXPECT_GE(stats.frame_errors, 2u);
    // The good peer's abandoned lease bounced back to the pool.
    EXPECT_EQ(stats.leases_reclaimed, 1u);
}

/** Synthetic lease results over a fixed slot grid (merge invariants). */
std::vector<LeaseResultMsg>
syntheticResults(const kern::Kernel &kernel)
{
    // Real program texts so crash dedup exercises the parse path.
    Rng rng(7);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 6);
    std::vector<LeaseResultMsg> results;
    for (uint64_t i = 0; i < 6; ++i) {
        LeaseResultMsg msg;
        msg.lease_id = i + 1;
        msg.execs = 100;
        WireProgram program;
        program.text = prog::formatProg(corpus[i]);
        program.blocks = {static_cast<uint32_t>(i), 50,
                          static_cast<uint32_t>(60 + i)};
        program.edges = {i, 1000 + i};
        msg.programs.push_back(program);
        WireCrash crash;
        crash.bug_index = static_cast<uint32_t>(i % 3);  // dups across
        crash.slot = i * 100 + 5;
        crash.trigger = program.text;
        msg.crashes.push_back(crash);
        msg.have_cov = true;
        msg.block_deltas = {{static_cast<uint32_t>(i), 5 + i},
                            {50, 2 * (i + 1)}};
        msg.edge_deltas = {{static_cast<uint32_t>(i % 4), i + 1}};
        msg.stray_edges = i;
        msg.have_policy = true;
        msg.policy_name = "thompson";
        msg.pmm_share = 0.1 * static_cast<double>(i);
        msg.arms = {{static_cast<uint32_t>(i % 2), 10 * (i + 1), i}};
        results.push_back(std::move(msg));
    }
    return results;
}

TEST(FleetAggregateTest, MergeIsArrivalOrderIndependent)
{
    const kern::Kernel kernel = testKernel();
    const std::vector<LeaseResultMsg> results =
        syntheticResults(kernel);

    // The lease-grid merge invariant: any arrival order (six "nodes"
    // racing, one node sequentially — same thing at the merge) must
    // produce the identical aggregate.
    std::vector<size_t> order(results.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    FleetAggregate reference(kernel, true);
    for (const size_t i : order)
        reference.merge(results[i]);

    for (int permutation = 0; permutation < 5; ++permutation) {
        std::next_permutation(order.begin(), order.end());
        FleetAggregate shuffled(kernel, true);
        for (const size_t i : order)
            shuffled.merge(results[i]);
        EXPECT_EQ(shuffled.corpusSize(), reference.corpusSize());
        EXPECT_EQ(shuffled.edgeCount(), reference.edgeCount());
        EXPECT_EQ(shuffled.blockCount(), reference.blockCount());
        EXPECT_EQ(shuffled.uniqueCrashes(), reference.uniqueCrashes());
        EXPECT_EQ(shuffled.blockHits(), reference.blockHits());
        EXPECT_EQ(shuffled.edgeHits(), reference.edgeHits());
        EXPECT_EQ(shuffled.strayEdges(), reference.strayEdges());
        for (uint32_t arm = 0; arm < 2; ++arm) {
            EXPECT_EQ(shuffled.posteriorPulls(arm),
                      reference.posteriorPulls(arm));
            EXPECT_EQ(shuffled.posteriorWins(arm),
                      reference.posteriorWins(arm));
        }
        EXPECT_DOUBLE_EQ(shuffled.pmmShare(), reference.pmmShare());
    }
}

TEST(FleetAggregateTest, MergeDedupsReplayedResults)
{
    const kern::Kernel kernel = testKernel();
    const std::vector<LeaseResultMsg> results =
        syntheticResults(kernel);

    FleetAggregate once(kernel, true);
    for (const auto &result : results)
        once.merge(result);

    // Replaying every program/crash (a node re-sending after a lost
    // ack) adds nothing to corpus or crash log: programs are content-
    // addressed, crashes dedup by bug site — fleet-wide, no crash can
    // exist twice.
    FleetAggregate twice(kernel, true);
    for (const auto &result : results)
        twice.merge(result);
    for (const auto &result : results) {
        LeaseResultMsg replay = result;
        replay.have_cov = false;     // deltas are NOT idempotent;
        replay.have_policy = false;  // stale-lease drop guards those
        const MergeOutcome outcome = twice.merge(replay);
        EXPECT_EQ(outcome.new_programs, 0u);
        EXPECT_EQ(outcome.new_crashes, 0u);
    }
    EXPECT_EQ(twice.corpusSize(), once.corpusSize());
    EXPECT_EQ(twice.uniqueCrashes(), once.uniqueCrashes());
    EXPECT_EQ(twice.blockHits(), once.blockHits());
}

TEST(FleetAggregateTest, MergeRejectsHostileIndices)
{
    const kern::Kernel kernel = testKernel();
    FleetAggregate aggregate(kernel, true);
    LeaseResultMsg msg;
    msg.lease_id = 1;
    WireCrash crash;
    crash.bug_index = 0xffffffffu;  // not a bug site of this kernel
    crash.trigger = "not a program either";
    msg.crashes.push_back(crash);
    msg.have_cov = true;
    msg.block_deltas = {{0xffffffffu, 7}};  // out-of-plan index
    msg.edge_deltas = {{0xffffffffu, 7}};
    const MergeOutcome outcome = aggregate.merge(msg);
    EXPECT_EQ(outcome.new_crashes, 0u);
    EXPECT_EQ(aggregate.uniqueCrashes(), 0u);
    uint64_t total = 0;
    for (const uint64_t hits : aggregate.blockHits())
        total += hits;
    EXPECT_EQ(total, 0u);
}

TEST(FleetFabric, TwoNodesDrainTheBudgetInProcess)
{
    const kern::Kernel kernel = testKernel();
    CoordinatorOptions opts;
    opts.budget = 400;
    opts.checkpoint_every = 100;
    opts.seed = 5;
    opts.serve_status = false;
    Coordinator coordinator(kernel, opts);

    const auto run_node = [&](const char *name) {
        NodeOptions node;
        node.port = coordinator.port();
        node.name = name;
        return runNode(node);
    };
    NodeStats s1;
    NodeStats s2;
    std::thread t1([&] { s1 = run_node("alpha"); });
    std::thread t2([&] { s2 = run_node("beta"); });
    t1.join();
    t2.join();

    EXPECT_TRUE(coordinator.drained());
    EXPECT_TRUE(s1.error.empty()) << s1.error;
    EXPECT_TRUE(s2.error.empty()) << s2.error;
    EXPECT_TRUE(s1.done);
    EXPECT_TRUE(s2.done);
    EXPECT_EQ(s1.leases + s2.leases, 4u);
    EXPECT_EQ(s1.stale + s2.stale, 0u);

    coordinator.stop();
    const CoordinatorStats stats = coordinator.stats();
    EXPECT_EQ(stats.watermark, 400u);
    EXPECT_EQ(stats.nodes_seen, 2u);
    EXPECT_GT(stats.corpus_size, 0u);
    EXPECT_GT(stats.edges, 0u);
    // Fleet-wide crash dedup: every pushed report beyond the unique
    // set was counted as a dup, and the unique set is bounded by the
    // kernel's bug sites — no crash is ever reported twice.
    EXPECT_EQ(stats.crashes_pushed,
              stats.unique_crashes + stats.crashes_deduped);
    EXPECT_LE(stats.unique_crashes, kernel.bugs().size());
}

TEST(FleetFabric, AbandonedLeaseIsReissuedAndTheFleetStillDrains)
{
    const kern::Kernel kernel = testKernel();
    CoordinatorOptions opts;
    opts.budget = 300;
    opts.checkpoint_every = 100;
    opts.seed = 9;
    opts.serve_status = false;
    Coordinator coordinator(kernel, opts);

    // Node 1 takes one lease and vanishes mid-campaign (no result, no
    // Bye). Its lease must bounce back to the pool.
    NodeOptions deserter;
    deserter.port = coordinator.port();
    deserter.name = "deserter";
    deserter.abandon_first = true;
    const NodeStats abandoned = runNode(deserter);
    EXPECT_EQ(abandoned.leases, 0u);

    // Node 2 alone must still drain the *full* budget, re-issued
    // lease included.
    NodeOptions worker;
    worker.port = coordinator.port();
    worker.name = "workhorse";
    const NodeStats finisher = runNode(worker);
    EXPECT_TRUE(finisher.error.empty()) << finisher.error;
    EXPECT_TRUE(finisher.done);
    EXPECT_EQ(finisher.leases, 3u);

    coordinator.stop();
    const CoordinatorStats stats = coordinator.stats();
    EXPECT_TRUE(coordinator.drained());
    EXPECT_EQ(stats.watermark, 300u);
    EXPECT_GE(stats.leases_reclaimed, 1u);
    EXPECT_EQ(stats.leases_granted, 4u);  // 3 ranges + 1 re-issue
}

TEST(FleetFabric, StatusPayloadsAreWellFormed)
{
    const kern::Kernel kernel = testKernel();
    CoordinatorOptions opts;
    opts.budget = 200;
    opts.checkpoint_every = 100;
    opts.serve_status = false;
    Coordinator coordinator(kernel, opts);

    NodeOptions node;
    node.port = coordinator.port();
    node.name = "solo";
    const NodeStats stats = runNode(node);
    EXPECT_TRUE(stats.error.empty()) << stats.error;

    const std::string status = coordinator.campaignJson();
    EXPECT_NE(status.find("\"type\":\"fleet\""), std::string::npos);
    EXPECT_NE(status.find("\"watermark\":200"), std::string::npos);
    EXPECT_NE(status.find("\"drained\":true"), std::string::npos);
    const std::string coverage = coordinator.coverageJson();
    EXPECT_NE(coverage.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(coverage.find("\"frontier\""), std::string::npos);
    coordinator.stop();
}

}  // namespace
}  // namespace sp::fleet
