// Differential tests for the execution-backend seam: the fast backend
// (dirty-state restore, epoch-stamped dense coverage, arena scratch)
// must be bit-identical to the reference interpreter in deterministic
// AND noisy modes — same calls, traces, returns, coverage, and crash
// attribution. Also unit-covers the KernelState undo journal and the
// DenseCoverage accumulator against their simple counterparts.

#include <gtest/gtest.h>

#include <thread>

#include "exec/arena.h"
#include "exec/executor.h"
#include "kernel/subsystems.h"
#include "prog/flatten.h"
#include "prog/gen.h"

namespace sp::exec {
namespace {

kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 13;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

prog::Call
makeCall(const prog::SyscallDecl &decl)
{
    prog::Call call;
    call.decl = &decl;
    call.args = prog::defaultArgs(decl);
    prog::fixupLengths(call);
    return call;
}

/** The crafted ATA-bug program from exec_test: crashes on call 1. */
prog::Prog
crashProgram(const kern::Kernel &kernel)
{
    const auto *open_scsi = kernel.table().find("open$scsi");
    const auto *ioctl = kernel.table().find("ioctl$scsi");
    EXPECT_NE(open_scsi, nullptr);
    EXPECT_NE(ioctl, nullptr);

    prog::Prog prog;
    prog.calls.push_back(makeCall(*open_scsi));
    prog.calls.push_back(makeCall(*ioctl));
    prog.calls.push_back(makeCall(*open_scsi));  // never reached

    auto &ioctl_call = prog.calls[1];
    ioctl_call.args[0]->result_ref = 0;
    ioctl_call.args[1]->scalar = kern::kScsiIoctlSendCommand;
    auto &req = *ioctl_call.args[2]->pointee;
    req.fields[0]->scalar = kern::kScsiProtoAta16;
    req.fields[1]->scalar = kern::kAtaCmdNop;
    req.fields[2]->scalar = kern::kAtaProtPio;
    req.fields[3]->scalar = kern::kAtaMaxDataLen + 1;
    return prog;
}

/** Full bit-identity check between two ExecResults. */
void
expectIdentical(const ExecResult &a, const ExecResult &b)
{
    ASSERT_EQ(a.calls.size(), b.calls.size());
    for (size_t i = 0; i < a.calls.size(); ++i) {
        EXPECT_EQ(a.calls[i].call_index, b.calls[i].call_index);
        EXPECT_EQ(a.calls[i].syscall_id, b.calls[i].syscall_id);
        EXPECT_EQ(a.calls[i].blocks, b.calls[i].blocks);
        EXPECT_EQ(a.calls[i].ret, b.calls[i].ret);
        EXPECT_EQ(a.calls[i].crashed, b.calls[i].crashed);
    }
    EXPECT_EQ(a.coverage.blocks(), b.coverage.blocks());
    EXPECT_EQ(a.coverage.edges(), b.coverage.edges());
    EXPECT_EQ(a.crashed, b.crashed);
    if (a.crashed && b.crashed) {
        EXPECT_EQ(a.bug_index, b.bug_index);
        EXPECT_EQ(a.crash_call, b.crash_call);
    }
}

TEST(KernelStateJournal, RollbackRestoresFlagsAndResources)
{
    kern::KernelState state(4);
    const uint64_t pre = state.allocResource(1);
    state.setFlag(2, true);
    state.beginJournal();
    EXPECT_TRUE(state.journaling());
    EXPECT_EQ(state.dirtyCount(), 0u);

    const uint64_t fresh = state.allocResource(2);
    state.setFlag(0, true);
    state.setFlag(2, false);
    state.setFlag(2, true);  // multiply-touched entry
    state.release(pre);
    EXPECT_GT(state.dirtyCount(), 0u);

    state.rollback();
    EXPECT_EQ(state.dirtyCount(), 0u);
    EXPECT_TRUE(state.alive(pre));
    EXPECT_FALSE(state.alive(fresh));
    EXPECT_FALSE(state.flag(0));
    EXPECT_TRUE(state.flag(2));
    EXPECT_EQ(state.liveCount(), 1u);
}

TEST(KernelStateJournal, StaysArmedAcrossRollbacks)
{
    kern::KernelState state(2);
    state.beginJournal();
    for (int round = 0; round < 3; ++round) {
        state.setFlag(1, true);
        const uint64_t id = state.allocResource(0);
        EXPECT_TRUE(state.alive(id));
        state.rollback();
        EXPECT_TRUE(state.journaling());
        EXPECT_FALSE(state.flag(1));
        EXPECT_EQ(state.liveCount(), 0u);
    }
}

TEST(KernelStateJournal, ReleaseOfJournaledAllocIsUndone)
{
    // Alloc-then-release inside one journaled window: truncation must
    // not resurrect the resource, and rollback must leave the restore
    // point intact.
    kern::KernelState state(1);
    state.beginJournal();
    const uint64_t id = state.allocResource(3);
    state.release(id);
    EXPECT_FALSE(state.alive(id));
    state.rollback();
    EXPECT_FALSE(state.alive(id));
    EXPECT_EQ(state.liveCount(), 0u);
}

TEST(DenseCoverage, MatchesCoverageSetOnRandomTraces)
{
    // One synthetic 8-block topology; traces follow the static
    // successors with occasional stray transitions.
    const size_t blocks = 8;
    std::vector<DenseCoverage::Successors> succ(blocks);
    for (uint32_t b = 0; b < blocks; ++b) {
        succ[b].taken = (b + 1) % blocks;
        succ[b].fallthrough = (b + 3) % blocks;
    }

    DenseCoverage dense;
    dense.bind(succ.data(), blocks);
    Rng rng(99);
    for (int exec = 0; exec < 50; ++exec) {
        dense.beginExec();
        CoverageSet expect;
        for (int call = 0; call < 4; ++call) {
            std::vector<uint32_t> trace;
            uint32_t at = static_cast<uint32_t>(rng.next() % blocks);
            trace.push_back(at);
            for (int step = 0; step < 12; ++step) {
                const uint64_t roll = rng.next() % 10;
                if (roll < 4)
                    at = succ[at].taken;
                else if (roll < 8)
                    at = succ[at].fallthrough;
                else  // stray edge outside the static CFG
                    at = static_cast<uint32_t>(rng.next() % blocks);
                trace.push_back(at);
            }
            dense.addTrace(trace.data(), trace.size());
            expect.addTrace(trace);
        }
        CoverageSet got;
        dense.exportTo(got);
        EXPECT_EQ(got.blocks(), expect.blocks());
        EXPECT_EQ(got.edges(), expect.edges());
    }
}

TEST(ExecBackend, FastIsDefaultAndParses)
{
    Executor executor(testKernel());
    EXPECT_EQ(executor.backendKind(), BackendKind::Fast);

    BackendKind kind = BackendKind::Fast;
    EXPECT_TRUE(parseBackendKind("ref", &kind));
    EXPECT_EQ(kind, BackendKind::Reference);
    EXPECT_TRUE(parseBackendKind("reference", &kind));
    EXPECT_EQ(kind, BackendKind::Reference);
    EXPECT_TRUE(parseBackendKind("fast", &kind));
    EXPECT_EQ(kind, BackendKind::Fast);
    EXPECT_FALSE(parseBackendKind("jit", &kind));
    EXPECT_STREQ(backendKindName(BackendKind::Reference), "ref");
    EXPECT_STREQ(backendKindName(BackendKind::Fast), "fast");
}

TEST(ExecBackend, DeterministicParity)
{
    auto &kernel = testKernel();
    ExecOptions ref_opts;
    ref_opts.backend = BackendKind::Reference;
    Executor ref(kernel, ref_opts);
    Executor fast(kernel);  // Fast by default

    Rng rng(31);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 60);
    corpus.push_back(crashProgram(kernel));
    size_t crashes = 0;
    for (const auto &prog : corpus) {
        auto a = ref.run(prog);
        auto b = fast.run(prog);
        expectIdentical(a, b);
        crashes += a.crashed ? 1 : 0;
    }
    // The crafted program guarantees the crash path was differentially
    // exercised (early exit + post-crash dirty restore).
    EXPECT_GE(crashes, 1u);
    EXPECT_EQ(ref.programsExecuted(), fast.programsExecuted());
    EXPECT_EQ(ref.callsExecuted(), fast.callsExecuted());
}

TEST(ExecBackend, NoisyParity)
{
    // Same noise seed on both executors: the backends must consume the
    // noise stream identically, so the whole sequence stays in
    // lockstep — including flaky-bug crashes and stray interrupt
    // blocks (the edges a dense static-CFG index alone can't dedup).
    auto &kernel = testKernel();
    ExecOptions ref_opts;
    ref_opts.deterministic = false;
    ref_opts.noise_seed = 7;
    ref_opts.backend = BackendKind::Reference;
    ExecOptions fast_opts = ref_opts;
    fast_opts.backend = BackendKind::Fast;
    Executor ref(kernel, ref_opts);
    Executor fast(kernel, fast_opts);

    Rng rng(32);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 80);
    corpus.push_back(crashProgram(kernel));
    size_t crashes = 0;
    for (const auto &prog : corpus) {
        auto a = ref.run(prog);
        auto b = fast.run(prog);
        expectIdentical(a, b);
        crashes += a.crashed ? 1 : 0;
    }
    EXPECT_GE(crashes, 1u);
}

TEST(ExecBackend, CrashRestoreLeavesNoResidue)
{
    // After a crash aborts a program mid-call, the fast backend's
    // rollback must still restore the pristine snapshot: a subsequent
    // run of any program must match a fresh reference executor.
    auto &kernel = testKernel();
    Executor fast(kernel);
    const auto crash_prog = crashProgram(kernel);
    auto crashed = fast.run(crash_prog);
    ASSERT_TRUE(crashed.crashed);

    ExecOptions ref_opts;
    ref_opts.backend = BackendKind::Reference;
    Executor ref(kernel, ref_opts);
    Rng rng(33);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 20);
    for (const auto &prog : corpus)
        expectIdentical(ref.run(prog), fast.run(prog));
}

TEST(ExecBackend, PoolSeedSplitParity)
{
    // A reference pool and a fast pool with the same base options must
    // agree on every worker's noise stream (splitSeed is backend-
    // independent) and every result.
    auto &kernel = testKernel();
    ExecOptions base;
    base.deterministic = false;
    base.noise_seed = 11;
    ExecOptions ref_base = base;
    ref_base.backend = BackendKind::Reference;
    const size_t workers = 3;
    ExecutorPool fast_pool(kernel, base, workers);
    ExecutorPool ref_pool(kernel, ref_base, workers);

    Rng rng(34);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 12);
    for (size_t w = 0; w < workers; ++w) {
        for (const auto &prog : corpus) {
            expectIdentical(ref_pool.at(w).run(prog),
                            fast_pool.at(w).run(prog));
        }
    }
    EXPECT_EQ(ref_pool.totalProgramsExecuted(),
              fast_pool.totalProgramsExecuted());
}

TEST(ExecBackend, ConcurrentPoolWorkersStayIndependent)
{
    // Four threads, each driving its own pool executor (the campaign
    // contract), against a serial pool with identical options — runs
    // under TSan in CI, so this also proves the thread-local arena and
    // per-backend state carry no cross-thread races.
    auto &kernel = testKernel();
    ExecOptions base;
    base.deterministic = false;
    base.noise_seed = 17;
    const size_t workers = 4;
    ExecutorPool pool(kernel, base, workers);
    ExecutorPool serial(kernel, base, workers);

    Rng rng(35);
    const auto corpus = prog::generateCorpus(rng, kernel.table(), 16);
    std::vector<std::vector<ExecResult>> parallel_results(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, w] {
            for (const auto &prog : corpus)
                parallel_results[w].push_back(pool.at(w).run(prog));
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (size_t w = 0; w < workers; ++w) {
        ASSERT_EQ(parallel_results[w].size(), corpus.size());
        for (size_t i = 0; i < corpus.size(); ++i)
            expectIdentical(serial.at(w).run(corpus[i]),
                            parallel_results[w][i]);
    }
}

TEST(ExecArena, RetainsCapacityAcrossRuns)
{
    auto &kernel = testKernel();
    Executor fast(kernel);
    Rng rng(36);
    auto corpus = prog::generateCorpus(rng, kernel.table(), 10);
    for (const auto &prog : corpus)
        fast.run(prog);
    auto &arena = ExecArena::local();
    const size_t warm_bytes = arena.bytes();
    const uint64_t before = arena.programs;
    EXPECT_GT(warm_bytes, 0u);
    for (const auto &prog : corpus)
        fast.run(prog);
    // Steady state: the same corpus allocates nothing new.
    EXPECT_EQ(arena.bytes(), warm_bytes);
    EXPECT_EQ(arena.programs, before + corpus.size());
}

}  // namespace
}  // namespace sp::exec
