/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in this project that makes a random choice draws from an Rng
 * seeded explicitly by the caller, so that experiments, tests and dataset
 * collection are reproducible bit-for-bit. The generator is xoshiro256**
 * seeded via splitmix64.
 */
#ifndef SP_UTIL_RNG_H
#define SP_UTIL_RNG_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sp {

/** Mix a 64-bit value through the splitmix64 finalizer. */
uint64_t splitmix64(uint64_t &state);

/**
 * Derive the seed of an independent numbered stream from one campaign
 * seed. Stream 0 is the identity — a single-stream consumer seeded with
 * `splitSeed(seed, 0)` is bit-for-bit the legacy consumer seeded with
 * `seed` — while every other stream is decorrelated through splitmix64.
 */
uint64_t splitSeed(uint64_t seed, uint64_t stream);

/** Deterministic xoshiro256** generator with convenience samplers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through splitmix64). */
    explicit Rng(uint64_t seed = 0);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [0, bound); bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** True with probability p (clamped to [0, 1]). */
    bool chance(double p);

    /** True one time in n (n >= 1). */
    bool oneIn(uint64_t n);

    /** Standard-normal draw (Box-Muller, no cached spare). */
    double gaussian();

    /** Uniformly pick an index weighted by the given nonnegative weights. */
    size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Pick k distinct indices out of n (k <= n) by partial Fisher-Yates.
     * The result order is random.
     */
    std::vector<size_t> sampleIndices(size_t n, size_t k);

    /** Fork a child generator whose stream is independent of this one. */
    Rng fork();

    /**
     * @name Raw generator state (train-checkpoint persistence)
     * A generator restored via setState() continues the exact draw
     * sequence the snapshotted generator would have produced — the
     * contract `train --resume` relies on for bit-identical runs.
     */
    /** @{ */
    std::array<uint64_t, 4> state() const;
    void setState(const std::array<uint64_t, 4> &state);
    /** @} */

  private:
    uint64_t s_[4];
};

}  // namespace sp

#endif  // SP_UTIL_RNG_H
