/**
 * @file
 * Hand-written kernel subsystems, modeled on the subsystems the paper's
 * evaluation exercises most: a VFS (open/read/write/close/mmap), the
 * SCSI/ATA ioctl path containing the deep out-of-bounds-write bug the
 * paper highlights (Table 4 bug #1 — reachable only with a precisely
 * crafted ioctl request), and a socket/sendmsg networking slice with
 * nested message structs (Figure 4).
 *
 * Each add*Subsystem call appends its syscalls and handler CFGs to a
 * KernelBuilder; buildBaseKernel composes them with a synthetic bulk
 * kernel into the full evaluation target.
 */
#ifndef SP_KERNEL_SUBSYSTEMS_H
#define SP_KERNEL_SUBSYSTEMS_H

#include "kernel/builder.h"
#include "kernel/kernel_gen.h"

namespace sp::kern {

/** @name VFS flag values (exported for tests and examples) */
/** @{ */
constexpr uint64_t kORdonly = 0x1;
constexpr uint64_t kOWronly = 0x2;
constexpr uint64_t kOCreat = 0x40;
constexpr uint64_t kOTrunc = 0x200;
constexpr uint64_t kOAppend = 0x400;
/** @} */

/** @name SCSI/ATA constants for the deep ioctl bug path */
/** @{ */
constexpr uint64_t kScsiIoctlSendCommand = 0x1;
constexpr uint64_t kScsiProtoAta16 = 0x85;
constexpr uint64_t kAtaCmdNop = 0x00;
constexpr uint64_t kAtaProtPio = 0x3;
constexpr uint64_t kAtaMaxDataLen = 512;
/** @} */

/** @name Socket constants */
/** @{ */
constexpr uint64_t kAfUnix = 0x1;
constexpr uint64_t kAfInet = 0x2;
constexpr uint64_t kSockStream = 0x1;
constexpr uint64_t kSockDgram = 0x2;
constexpr uint64_t kMsgOob = 0x1;
constexpr uint64_t kMsgDontwait = 0x40;
/** @} */

/** File subsystem: open$file, read, write, close$file, mmap. */
void addVfsSubsystem(KernelBuilder &builder);

/** SCSI subsystem: open$scsi and ioctl$scsi with the ATA OOB bug. */
void addScsiSubsystem(KernelBuilder &builder);

/** Network subsystem: socket, bind, listen, sendmsg$inet. */
void addNetSubsystem(KernelBuilder &builder);

/**
 * The full evaluation kernel: hand-written subsystems plus a synthetic
 * bulk generated from `params` (the subsystems are added first, so
 * their syscall ids are stable across versions/evolutions).
 */
Kernel buildBaseKernel(const KernelGenParams &params);

}  // namespace sp::kern

#endif  // SP_KERNEL_SUBSYSTEMS_H
