/**
 * @file
 * Directed kernel fuzzing (paper §5.4).
 *
 * SyzDirect's essence is reproduced as a distance-guided fuzzer: a
 * static reverse-BFS distance map from the target block over the
 * kernel CFG drives choose_test (corpus entries whose coverage sits
 * closest to the target are mutated preferentially), and the campaign
 * stops the moment the target block is covered. Snowplow-D is the same
 * loop with the PMM localizer in directed mode: the query marks the
 * target block (when it reaches the one-hop frontier) as the desired
 * coverage, so argument selection is steered toward the branch guarding
 * the target.
 */
#ifndef SP_CORE_DIRECTED_H
#define SP_CORE_DIRECTED_H

#include <cstdint>
#include <vector>

#include "core/snowplow.h"

namespace sp::core {

/** Directed-campaign configuration. */
struct DirectedOptions
{
    uint32_t target_block = 0;
    uint64_t exec_budget = 30000;  ///< the 24-hour cap analog
    uint64_t seed = 1;
    fuzz::FuzzOptions fuzz;        ///< base loop options (budget/seed set
                                   ///  from the fields above)
};

/** Outcome of one directed run. */
struct DirectedResult
{
    bool reached = false;
    uint64_t execs_to_reach = 0;  ///< executions when first covered
    uint64_t execs_total = 0;
};

/** Outcome of a multi-target directed run (cold-frontier target sets
 *  derived by `snowplow_cli analyze`). */
struct MultiDirectedResult
{
    std::vector<uint32_t> reached;  ///< targets covered when stopped
    uint64_t execs_total = 0;
};

/**
 * Distance (in CFG edges) from every block to `target`; kNoBlock-like
 * ~0u marks blocks that cannot reach it.
 */
std::vector<uint32_t> distanceToBlock(const kern::Kernel &kernel,
                                      uint32_t target);

/**
 * Multi-source variant: distance from every block to the *nearest* of
 * `targets` (the reverse BFS starts from all of them at distance 0).
 * This is how a ranked cold-frontier set steers one campaign toward
 * many targets at once.
 */
std::vector<uint32_t> distanceToBlocks(
    const kern::Kernel &kernel, const std::vector<uint32_t> &targets);

/**
 * Distance-guided base scheduler: corpus entries whose coverage sits
 * closest to `target` (by static reverse-BFS distance) get most of the
 * pick mass. This is the directed mode's choose_test as a Scheduler —
 * stateless after construction, so safe to share across campaign
 * workers.
 */
std::shared_ptr<fuzz::Scheduler>
makeDistanceScheduler(const kern::Kernel &kernel, uint32_t target);

/** Multi-target distance scheduler (nearest-target distances). */
std::shared_ptr<fuzz::Scheduler>
makeDistanceScheduler(const kern::Kernel &kernel,
                      const std::vector<uint32_t> &targets);

/** Run the SyzDirect baseline toward one target. */
DirectedResult runSyzDirect(const kern::Kernel &kernel,
                            const DirectedOptions &opts);

/** Run Snowplow-D (SyzDirect + PMM localization) toward one target. */
DirectedResult runSnowplowD(const kern::Kernel &kernel, const Pmm &model,
                            const DirectedOptions &opts);

/**
 * Run Snowplow-D toward a whole target set (opts.target_block is
 * ignored): the scheduler steers by nearest-target distance, the PMM
 * query marks every frontier target, and the run stops once all
 * targets are covered or the budget ends. Returns which targets were
 * reached.
 */
MultiDirectedResult runSnowplowD(const kern::Kernel &kernel,
                                 const Pmm &model,
                                 const std::vector<uint32_t> &targets,
                                 const DirectedOptions &opts);

}  // namespace sp::core

#endif  // SP_CORE_DIRECTED_H
