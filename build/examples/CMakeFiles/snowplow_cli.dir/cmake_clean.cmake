file(REMOVE_RECURSE
  "CMakeFiles/snowplow_cli.dir/snowplow_cli.cpp.o"
  "CMakeFiles/snowplow_cli.dir/snowplow_cli.cpp.o.d"
  "snowplow_cli"
  "snowplow_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snowplow_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
