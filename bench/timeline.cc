// Timeline-observatory hot-path benchmarks, backing the <1%-per-
// checkpoint budget `ci/run_tier1.sh` enforces:
//
//  - BM_TimelineOverhead/enabled:0|1 — end-to-end campaign throughput
//    (the legacy single-worker loop) with and without a recorder
//    sampling every checkpoint into a JSONL artifact; items/s is
//    executions per second;
//  - BM_TimelineSample — the exact per-checkpoint work the serialized
//    checkpoint owner adds: one onCheckpoint() (registry sweep, delta
//    encode, artifact append, ring push). The CI gate divides this by
//    a full checkpoint interval's worth of slot time (stable micro
//    ratio, not a noisy end-to-end difference);
//  - BM_TimelineDisabledSite — the null-recorder branch every
//    timeline-less campaign pays per checkpoint (must be
//    unmeasurable).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "fuzz/fuzzer.h"
#include "mutate/localizer.h"
#include "obs/timeline.h"

namespace {

using namespace sp;

constexpr uint64_t kCampaignBudget = 2000;
constexpr char kScratchLog[] = "/tmp/sp_bench_timeline.jsonl";

const kern::Kernel &
benchKernel()
{
    static kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    return kernel;
}

/** A representative tick: covmap summary + a dozen active arms. */
obs::TimelineTick
sampleTick(uint64_t execs)
{
    obs::TimelineTick tick;
    tick.execs = execs;
    tick.edges = 350;
    tick.blocks = 280;
    tick.crashes = 4;
    tick.corpus_size = 120;
    tick.have_cov = true;
    tick.cov_blocks_hit = 280;
    tick.cov_edges_hit = 320;
    tick.cov_total_block_hits = 40000 + execs;
    tick.cov_frontier_size = 40;
    tick.cov_stray_edges = 60;
    tick.have_policy = true;
    tick.policy_name = "thompson";
    tick.pmm_share = 0.35;
    for (int arm = 0; arm < 12; ++arm)
        tick.arms.push_back(
            {arm * 3, 40 + execs / 625 + static_cast<uint64_t>(arm),
             5 + static_cast<uint64_t>(arm) / 2});
    return tick;
}

// One full campaign per iteration, with and without a recorder wired
// into the checkpoint path — exactly what `fuzz --timeline-out` adds
// over a plain `fuzz`.
void
BM_TimelineOverhead(benchmark::State &state)
{
    const bool enabled = state.range(0) != 0;
    const auto &kernel = benchKernel();
    for (auto _ : state) {
        auto recorder = enabled
                            ? std::make_unique<obs::TimelineRecorder>()
                            : nullptr;
        if (recorder != nullptr)
            recorder->openLog(kScratchLog);
        fuzz::FuzzOptions opts = spbench::evalFuzzOptions(
            kCampaignBudget, /*seed=*/9);
        opts.timeline = recorder.get();
        fuzz::Fuzzer fuzzer(kernel, opts,
                            std::make_unique<mut::RandomLocalizer>());
        auto report = fuzzer.run();
        if (recorder != nullptr) {
            obs::TimelineTick tick;
            tick.execs = report.execs;
            tick.edges = report.final_edges;
            recorder->finalize(tick);
        }
        benchmark::DoNotOptimize(report.final_edges);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kCampaignBudget));
    std::remove(kScratchLog);
}
BENCHMARK(BM_TimelineOverhead)->ArgNames({"enabled"})->Arg(0)->Arg(1);

// The per-checkpoint sampling work itself (items = samples). This is
// the numerator of the CI gate: one sample must cost under 1% of the
// slot work between two checkpoints.
void
BM_TimelineSample(benchmark::State &state)
{
    obs::TimelineRecorder recorder;
    recorder.openLog(kScratchLog);
    uint64_t execs = 0;
    for (auto _ : state) {
        execs += 625;
        recorder.onCheckpoint(sampleTick(execs));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    std::remove(kScratchLog);
}
BENCHMARK(BM_TimelineSample);

// Pure null-check cost at the checkpoint site when no recorder is
// attached (the default campaign configuration).
void
BM_TimelineDisabledSite(benchmark::State &state)
{
    obs::TimelineRecorder *recorder = nullptr;
    const obs::TimelineTick tick = sampleTick(625);
    for (auto _ : state) {
        if (recorder != nullptr)
            recorder->onCheckpoint(tick);
        benchmark::DoNotOptimize(recorder);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TimelineDisabledSite);

}  // namespace

BENCHMARK_MAIN();
