// Unit tests for src/util: RNG determinism and distributions, hashing,
// statistics accumulators and table formatting.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hash.h"
#include "util/rng.h"
#include "util/stats.h"

namespace sp {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(9);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequencyMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(23);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i)
        stat.add(rng.gaussian());
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(29);
    std::vector<double> w = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        counts[rng.weightedIndex(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform)
{
    Rng rng(31);
    std::vector<double> w = {0.0, 0.0};
    std::set<size_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(rng.weightedIndex(w));
    EXPECT_EQ(seen.size(), 2u);
}

TEST(Rng, SampleIndicesDistinctAndComplete)
{
    Rng rng(37);
    auto picks = rng.sampleIndices(10, 4);
    EXPECT_EQ(picks.size(), 4u);
    std::set<size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 4u);
    for (size_t p : picks)
        EXPECT_LT(p, 10u);

    auto all = rng.sampleIndices(5, 5);
    std::set<size_t> everything(all.begin(), all.end());
    EXPECT_EQ(everything.size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(41);
    Rng child = a.fork();
    // Child stream should not replay the parent stream.
    Rng b(41);
    b.next();  // advance like the fork did
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (child.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Hash, Fnv1aStableKnownValue)
{
    // FNV-1a of empty input is the offset basis.
    EXPECT_EQ(fnv1a(std::string_view("")), 0xcbf29ce484222325ULL);
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    EXPECT_EQ(fnv1a("snowplow"), fnv1a("snowplow"));
}

TEST(Hash, CombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Hash, U64AvalanchesLowBits)
{
    std::set<uint64_t> seen;
    for (uint64_t i = 0; i < 1000; ++i)
        seen.insert(hashU64(i));
    EXPECT_EQ(seen.size(), 1000u);
}

TEST(RunningStat, EmptyDefaults)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Distribution, Percentiles)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(d.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(1), 1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
}

TEST(Distribution, EmptyPercentileIsZero)
{
    Distribution d;
    EXPECT_EQ(d.percentile(50), 0.0);
    EXPECT_EQ(d.mean(), 0.0);
}

TEST(FormatTable, AlignsColumns)
{
    auto text = formatTable({"name", "value"},
                            {{"alpha", "1"}, {"b", "22222"}});
    // Headers and both rows present, all lines equal width.
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22222"), std::string::npos);
    size_t first_nl = text.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    size_t width = first_nl;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

}  // namespace
}  // namespace sp
