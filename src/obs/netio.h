/**
 * @file
 * Dependency-free POSIX TCP plumbing shared by the introspection
 * server (statusd.h) and the distributed campaign fabric (src/fleet).
 *
 * A TcpListener binds 127.0.0.1 — every consumer here is a loopback
 * control surface, not a public endpoint — and reports the actually
 * bound port, so port 0 gives callers an ephemeral port they can
 * discover through port(). Shutdown follows the statusd discipline:
 * one thread owns the accept loop and close(); any other thread may
 * only shutdown() to unblock it (closing from outside would race a
 * concurrent accept() against fd-number reuse). The descriptor itself
 * is atomic so that cross-thread unblock() and the owner's close()
 * never race on the field.
 */
#ifndef SP_OBS_NETIO_H
#define SP_OBS_NETIO_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sp::obs {

/** A bound + listening TCP socket on 127.0.0.1. */
class TcpListener
{
  public:
    /**
     * Bind 127.0.0.1:`port` (0 = ephemeral) and listen. SP_FATALs
     * when the socket cannot be bound — callers treat an unusable
     * control surface as a configuration error.
     */
    explicit TcpListener(uint16_t port, int backlog = 16);

    /** Closes the socket if the owner loop never did. */
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The bound port (the ephemeral pick when constructed with 0). */
    uint16_t port() const { return port_; }

    int fd() const { return fd_.load(std::memory_order_acquire); }

    /** Blocking accept(); returns -1 on failure (e.g. after unblock). */
    int acceptConnection();

    /** Unblock a concurrent acceptConnection() from another thread. */
    void unblock();

    /** Close the listening socket (accept-loop owner only). */
    void close();

  private:
    std::atomic<int> fd_{-1};
    uint16_t port_ = 0;
};

/**
 * Blocking connect to host:port. Returns the connected fd, or -1.
 * `host` must be a dotted-quad IPv4 literal (the fabric is loopback /
 * explicit-address only; no resolver dependency).
 */
int connectTcp(const std::string &host, uint16_t port);

/**
 * Write exactly `len` bytes (MSG_NOSIGNAL; a dead peer returns false
 * instead of raising SIGPIPE). False on any short write.
 */
bool sendAll(int fd, const void *data, size_t len);

/**
 * Read exactly `len` bytes. Returns `len` on success, 0 on clean EOF
 * before the first byte, and the partial count (< len) when the
 * stream ended or errored mid-read — the torn-frame case protocol
 * code must treat as malformed, not as EOF.
 */
size_t recvAll(int fd, void *data, size_t len);

}  // namespace sp::obs

#endif  // SP_OBS_NETIO_H
