// Reproduces paper Table 2: crashes found during the 7-day campaign.
//
// Snowplow and Syzkaller each fuzz kernel 6.8 for a 7-virtual-day
// budget, twice with different seeds. Crashes are deduplicated and
// split into new vs known (the planted shallow bugs are on the
// continuous-fuzzing known list; the deep ones are not).
//
// Paper reference (Table 2):
//              Snowplow run1/run2   Syzkaller run1/run2
//   New crashes        67 / 46             0 / 0
//   Known crashes      14 / 13             8 / 11
// Expected shape: Snowplow finds many new (deep) crashes, Syzkaller
// finds none or almost none; both find known (shallow) crashes.

#include <cstdio>
#include <string>

#include "bench/common.h"
#include "util/stats.h"

namespace {

struct CampaignTally
{
    size_t new_crashes = 0;
    size_t known_crashes = 0;
};

CampaignTally
runCampaign(const sp::kern::Kernel &kernel, bool snowplow, uint64_t seed,
            uint64_t budget)
{
    auto opts = spbench::evalFuzzOptions(budget, seed);
    auto fuzzer = snowplow
                      ? sp::core::makeSnowplowFuzzer(
                            kernel, spbench::sharedPmm(), opts,
                            spbench::evalSnowplowOptions())
                      : sp::core::makeSyzkallerFuzzer(kernel, opts);
    fuzzer->run();
    CampaignTally tally;
    tally.new_crashes = fuzzer->crashes().newCrashes();
    tally.known_crashes = fuzzer->crashes().knownCrashes();
    std::fprintf(stderr, "[table2] %s seed %llu: %zu new, %zu known\n",
                 snowplow ? "snowplow" : "syzkaller",
                 static_cast<unsigned long long>(seed),
                 tally.new_crashes, tally.known_crashes);
    return tally;
}

}  // namespace

int
main()
{
    using namespace sp;
    // 7 virtual days, scaled down 4x to keep the bench quick; the
    // shape (deep bugs reachable only with learned localization within
    // the budget) is what matters.
    const uint64_t budget = 7 * 24 * spbench::kHourInExecs / 5;
    std::printf("=== Table 2: crashes found during the 7-day campaign "
                "(budget %llu execs) ===\n\n",
                static_cast<unsigned long long>(budget));

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");

    auto snow1 = runCampaign(kernel, true, 101, budget);
    auto snow2 = runCampaign(kernel, true, 202, budget);
    auto syz1 = runCampaign(kernel, false, 101, budget);
    auto syz2 = runCampaign(kernel, false, 202, budget);

    auto s = [](size_t v) { return std::to_string(v); };
    std::printf("%s\n",
                formatTable(
                    {"Status", "Snowplow run1", "Snowplow run2",
                     "Syzkaller run1", "Syzkaller run2"},
                    {{"New Crashes", s(snow1.new_crashes),
                      s(snow2.new_crashes), s(syz1.new_crashes),
                      s(syz2.new_crashes)},
                     {"Known Crashes", s(snow1.known_crashes),
                      s(snow2.known_crashes), s(syz1.known_crashes),
                      s(syz2.known_crashes)},
                     {"Total",
                      s(snow1.new_crashes + snow1.known_crashes),
                      s(snow2.new_crashes + snow2.known_crashes),
                      s(syz1.new_crashes + syz1.known_crashes),
                      s(syz2.new_crashes + syz2.known_crashes)}})
                    .c_str());

    std::printf("paper: Snowplow 67/46 new + 14/13 known; Syzkaller "
                "0/0 new + 8/11 known\n");
    std::printf("shape check: snowplow_new >> syzkaller_new, both find "
                "known crashes -> %s\n",
                (snow1.new_crashes + snow2.new_crashes >
                     3 * (syz1.new_crashes + syz2.new_crashes) &&
                 syz1.known_crashes + syz2.known_crashes > 0)
                    ? "HOLDS"
                    : "CHECK");
    return 0;
}
