// sp_analysis — offline analysis over campaign artifacts.
//
//   sp_analysis compare A.jsonl B.jsonl [--out REPORT.json]
//                       [--final-edges-tol X] [--auc-tol X]
//                       [--time-tol X] [--latency-tol X] [--frac X]
//       Differential comparison of two `fuzz --timeline-out`
//       artifacts: align both runs on their shared virtual-time grid
//       and print the verdict table (final edges, coverage AUC,
//       time-to-X%-of-A's-edges, latency p50 shifts, counter deltas,
//       policy divergence). A is the baseline: verdicts are relative
//       to it, with the tolerances above (fractions, e.g. 0.02 = 2%).
//       --out additionally writes the versioned machine-readable
//       compare_report JSON.
//
//   Exit codes: 0 = compared, no regression; 1 = usage error;
//   2 = artifact failed to load; 3 = regression verdict(s).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/compare.h"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sp_analysis compare A.jsonl B.jsonl "
        "[--out REPORT.json]\n"
        "                   [--final-edges-tol X] [--auc-tol X] "
        "[--time-tol X]\n"
        "                   [--latency-tol X] [--frac X]\n");
    return 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || std::strcmp(argv[1], "compare") != 0)
        return usage();

    std::string path_a, path_b, out;
    sp::analysis::CompareOptions opts;
    for (int i = 2; i < argc;) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            if (i + 1 >= argc)
                return usage();
            const std::string value = argv[i + 1];
            if (arg == "--out")
                out = value;
            else if (arg == "--final-edges-tol")
                opts.final_edges_tol = std::atof(value.c_str());
            else if (arg == "--auc-tol")
                opts.auc_tol = std::atof(value.c_str());
            else if (arg == "--time-tol")
                opts.time_to_tol = std::atof(value.c_str());
            else if (arg == "--latency-tol")
                opts.latency_tol = std::atof(value.c_str());
            else if (arg == "--frac")
                opts.time_to_frac = std::atof(value.c_str());
            else
                return usage();
            i += 2;
        } else {
            if (path_a.empty())
                path_a = arg;
            else if (path_b.empty())
                path_b = arg;
            else
                return usage();
            i += 1;
        }
    }
    if (path_a.empty() || path_b.empty())
        return usage();

    const auto log_a = sp::analysis::TimelineLog::load(path_a);
    if (!log_a.ok()) {
        std::fprintf(stderr, "sp_analysis: %s: %s\n", path_a.c_str(),
                     log_a.error.c_str());
        return 2;
    }
    const auto log_b = sp::analysis::TimelineLog::load(path_b);
    if (!log_b.ok()) {
        std::fprintf(stderr, "sp_analysis: %s: %s\n", path_b.c_str(),
                     log_b.error.c_str());
        return 2;
    }

    const auto report = sp::analysis::compare(log_a, log_b, opts);
    std::fputs(sp::analysis::compareText(report).c_str(), stdout);

    if (!out.empty()) {
        std::FILE *f = std::fopen(out.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "sp_analysis: cannot write %s\n",
                         out.c_str());
            return 2;
        }
        const std::string json =
            sp::analysis::compareJson(report) + "\n";
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("report written to %s\n", out.c_str());
    }
    return report.regressed() ? 3 : 0;
}
