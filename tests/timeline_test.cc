// Tests for the campaign timeline observatory: registry distribution
// resets, TimelineRecorder sampling/ring/delta-encoded JSONL, workers=1
// artifact bit-reproducibility, merge-grid alignment under workers=4
// (the TSan'd sampling/scrape contract), the /timeline endpoint, and
// the differential compare half (A vs A ⇒ zero deltas; synthetic
// regressions are caught).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compare.h"
#include "fuzz/campaign.h"
#include "kernel/subsystems.h"
#include "mutate/localizer.h"
#include "obs/covmap.h"
#include "obs/metrics.h"
#include "obs/statusd.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace sp::obs {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

fuzz::CampaignOptions
smallCampaign(size_t workers, uint64_t seed)
{
    fuzz::CampaignOptions opts;
    opts.workers = workers;
    opts.fuzz.exec_budget = 1500;
    opts.fuzz.seed = seed;
    opts.fuzz.seed_corpus_size = 20;
    opts.fuzz.checkpoint_every = 250;
    return opts;
}

fuzz::CampaignEngine::LocalizerFactory
randomLocalizers()
{
    return [](size_t) { return std::make_unique<mut::RandomLocalizer>(); };
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
}

TimelineTick
tickAt(uint64_t execs, uint64_t edges = 0)
{
    TimelineTick tick;
    tick.execs = execs;
    tick.edges = edges;
    return tick;
}

TEST(Metrics, ResetDistributionsWithPrefix)
{
    Registry reg;
    reg.histogram("tlx.alpha_us").record(3.0);
    reg.histogram("tlx.beta_us").record(4.0);
    reg.histogram("other.gamma_us").record(5.0);

    EXPECT_EQ(reg.resetDistributionsWithPrefix("tlx."), 2u);
    EXPECT_EQ(reg.histogram("tlx.alpha_us").count(), 0u);
    EXPECT_EQ(reg.histogram("tlx.beta_us").count(), 0u);
    EXPECT_EQ(reg.histogram("other.gamma_us").count(), 1u);

    // Reset-in-place: handles taken before the reset stay valid.
    Histogram &alpha = reg.histogram("tlx.alpha_us");
    reg.resetDistributionsWithPrefix("tlx.");
    alpha.record(7.0);
    EXPECT_EQ(alpha.count(), 1u);
}

TEST(Metrics, HistogramStatMatchesSnapshotMoments)
{
    Registry reg;
    Histogram &hist = reg.histogram("tlx.stat_us");
    for (int i = 1; i <= 10; ++i)
        hist.record(static_cast<double>(i));
    const RunningStat stat = hist.stat();
    EXPECT_EQ(stat.count(), 10u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.5);
    EXPECT_DOUBLE_EQ(stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(stat.max(), 10.0);
}

TEST(TimelineRecorder, RingIsBoundedAndCountersAreBaselined)
{
    Registry reg;
    reg.counter("tlx.count").inc(5);  // pre-campaign noise

    TimelineOptions opts;
    opts.registry = &reg;
    opts.ring_capacity = 4;
    TimelineRecorder recorder(opts);

    for (uint64_t i = 1; i <= 10; ++i) {
        if (i == 2)
            reg.counter("tlx.count").inc(3);
        recorder.onCheckpoint(tickAt(i * 100));
    }
    EXPECT_EQ(recorder.sampleCount(), 10u);

    const auto samples = recorder.samples();
    ASSERT_EQ(samples.size(), 4u);
    EXPECT_EQ(samples.front().tick.execs, 700u);
    EXPECT_EQ(samples.back().tick.execs, 1000u);
    // The construction-time value of tlx.count is subtracted out; only
    // the in-campaign increment shows (cumulative in every sample).
    EXPECT_EQ(samples.back().counters.at("tlx.count"), 3u);
}

TEST(TimelineRecorder, FinalizeIsIdempotentAndStopsSampling)
{
    Registry reg;
    TimelineOptions opts;
    opts.registry = &reg;
    TimelineRecorder recorder(opts);
    recorder.onCheckpoint(tickAt(100));
    recorder.finalize(tickAt(200));
    EXPECT_EQ(recorder.sampleCount(), 2u);
    recorder.finalize(tickAt(300));
    recorder.onCheckpoint(tickAt(400));
    EXPECT_EQ(recorder.sampleCount(), 2u);
    EXPECT_EQ(recorder.samples().back().tick.execs, 200u);
}

TEST(TimelineRecorder, RecentJsonExposesTheWindow)
{
    Registry reg;
    TimelineOptions opts;
    opts.registry = &reg;
    TimelineRecorder recorder(opts);
    recorder.onCheckpoint(tickAt(100, 7));
    recorder.onCheckpoint(tickAt(200, 9));

    const std::string json = recorder.recentJson(1);
    EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
    EXPECT_NE(json.find("\"samples\":2"), std::string::npos);
    EXPECT_NE(json.find("\"execs\":200"), std::string::npos);
    // Window capped at 1: the older sample is not in the payload.
    EXPECT_EQ(json.find("\"execs\":100"), std::string::npos);
}

TEST(TimelineRecorder, WritesDeltaEncodedArtifact)
{
    const std::string path = "/tmp/sp_timeline_test_unit.jsonl";
    Registry reg;
    TimelineOptions opts;
    opts.registry = &reg;
    TimelineRecorder recorder(opts);
    ASSERT_TRUE(recorder.openLog(path, "\"campaign\":{\"seed\":7}"));

    reg.counter("tlx.count").inc(3);
    recorder.onCheckpoint(tickAt(100, 5));
    reg.counter("tlx.count").inc(2);
    recorder.onCheckpoint(tickAt(200, 6));
    recorder.finalize(tickAt(300, 7));

    std::ifstream in(path);
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_NE(lines[0].find("\"type\":\"timeline_header\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"campaign\":{\"seed\":7}"),
              std::string::npos);
    // Deltas, not cumulative values, line over line.
    EXPECT_NE(lines[1].find("\"tlx.count\":3"), std::string::npos);
    EXPECT_NE(lines[2].find("\"tlx.count\":2"), std::string::npos);
    // The final record is cumulative again.
    EXPECT_NE(lines[3].find("\"type\":\"timeline_final\""),
              std::string::npos);
    EXPECT_NE(lines[3].find("\"tlx.count\":5"), std::string::npos);
    std::remove(path.c_str());
}

/** One campaign with covmap + timeline artifact; returns the bytes. */
std::string
runArtifact(const std::string &path, uint64_t seed, size_t workers)
{
    const auto &kernel = testKernel();
    CovMap map(CovMapPlan::build(kernel.blocks().size(),
                                 kernel.staticEdges()),
               workers);
    auto opts = smallCampaign(workers, seed);
    opts.fuzz.covmap = &map;
    TimelineRecorder recorder;
    EXPECT_TRUE(recorder.openLog(path));
    opts.fuzz.timeline = &recorder;
    fuzz::CampaignEngine engine(kernel, opts, randomLocalizers());
    auto report = engine.run();
    map.finalize(report.execs);
    fuzz::Checkpoint fin;
    fin.execs = report.execs;
    fin.edges = report.final_edges;
    fin.blocks = report.final_blocks;
    fin.crashes = report.final_crashes;
    recorder.finalize(fuzz::makeTimelineTick(
        fin, report.corpus_size, &map, engine.policy()));
    return readFile(path);
}

TEST(TimelineCampaign, SingleWorkerArtifactIsBitReproducible)
{
    // Same seed, no telemetry sink: the whole JSONL artifact must be
    // byte-identical run over run (virtual time is the only clock).
    const std::string a =
        runArtifact("/tmp/sp_timeline_test_a.jsonl", 11, 1);
    const std::string b =
        runArtifact("/tmp/sp_timeline_test_b.jsonl", 11, 1);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
    std::remove("/tmp/sp_timeline_test_a.jsonl");
    std::remove("/tmp/sp_timeline_test_b.jsonl");
}

TEST(TimelineCampaign, SamplesLandOnTheCheckpointGridUnderWorkers)
{
    // Four workers race the stages, but the serialized checkpoint
    // owner samples on the same virtual-time grid as workers=1 —
    // sample K is checkpoint K, exactly (run under TSan in CI).
    const auto &kernel = testKernel();
    auto opts = smallCampaign(4, 33);
    TimelineRecorder recorder;
    opts.fuzz.timeline = &recorder;
    fuzz::CampaignEngine engine(kernel, opts, randomLocalizers());
    auto report = engine.run();

    const auto samples = recorder.samples();
    ASSERT_EQ(samples.size(), report.timeline.size());
    ASSERT_GT(samples.size(), 1u);
    for (size_t i = 0; i < samples.size(); ++i) {
        EXPECT_EQ(samples[i].tick.execs, report.timeline[i].execs);
        EXPECT_EQ(samples[i].tick.execs % 250, 0u);
        EXPECT_EQ(samples[i].tick.edges, report.timeline[i].edges);
        EXPECT_EQ(samples[i].tick.crashes, report.timeline[i].crashes);
        if (i > 0) {
            EXPECT_GT(samples[i].tick.execs,
                      samples[i - 1].tick.execs);
        }
    }
}

/** Minimal HTTP GET; EXPECT-free so scraper threads can use it. */
std::string
httpGet(uint16_t port, const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    if (::send(fd, request.data(), request.size(), 0) !=
        static_cast<ssize_t>(request.size())) {
        ::close(fd);
        return "";
    }
    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return reply;
}

TEST(TimelineEndpoint, DisabledByDefault)
{
    setTimelineProvider(nullptr);
    EXPECT_EQ(timelineJson(), "{\"enabled\":false}");
}

TEST(TimelineEndpoint, ServesTheWindowDuringACampaign)
{
    // Scrape /timeline continuously while checkpoint merges sample the
    // recorder — the recentJson/onCheckpoint concurrency contract
    // (exercised under TSan via the CI stage-3 list).
    TimelineRecorder recorder;
    setTimelineProvider([&recorder] { return recorder.recentJson(); });
    StatusServer server(0);
    ASSERT_NE(server.port(), 0u);

    std::atomic<bool> done{false};
    std::atomic<size_t> scrapes{0};
    std::atomic<size_t> bad{0};
    std::thread scraper([&] {
        while (!done.load(std::memory_order_relaxed)) {
            const std::string reply =
                httpGet(server.port(), "/timeline");
            scrapes.fetch_add(1, std::memory_order_relaxed);
            if (reply.find("200 OK") == std::string::npos ||
                reply.find("\"enabled\":true") == std::string::npos)
                bad.fetch_add(1, std::memory_order_relaxed);
        }
    });

    const auto &kernel = testKernel();
    auto opts = smallCampaign(2, 44);
    opts.fuzz.timeline = &recorder;
    fuzz::CampaignEngine engine(kernel, opts, randomLocalizers());
    engine.run();

    done.store(true);
    scraper.join();
    setTimelineProvider(nullptr);
    EXPECT_GT(recorder.sampleCount(), 0u);
    EXPECT_GT(scrapes.load(), 0u);
    EXPECT_EQ(bad.load(), 0u);
}

TEST(TimelineCompare, SelfComparisonHasZeroDeltasAndNoRegressions)
{
    // A vs A must yield zero deltas and no regression verdicts.
    const std::string path = "/tmp/sp_timeline_test_self.jsonl";
    runArtifact(path, 11, 1);
    const auto log = analysis::TimelineLog::load(path);
    ASSERT_TRUE(log.ok()) << log.error;
    EXPECT_EQ(log.version, 1);
    EXPECT_FALSE(log.timing);
    EXPECT_GT(log.samples.size(), 1u);
    ASSERT_TRUE(log.has_final);

    const auto report = analysis::compare(log, log);
    EXPECT_EQ(report.aligned_samples, log.samples.size());
    EXPECT_FALSE(report.regressed());
    EXPECT_EQ(report.final_edges.a, report.final_edges.b);
    EXPECT_EQ(report.final_edges.verdict, analysis::Verdict::Ok);
    EXPECT_EQ(report.coverage_auc.a, report.coverage_auc.b);
    EXPECT_EQ(report.coverage_auc.verdict, analysis::Verdict::Ok);
    EXPECT_EQ(report.time_to_target.a, report.time_to_target.b);
    EXPECT_DOUBLE_EQ(report.arm_divergence, 0.0);
    for (const auto &counter : report.counters)
        EXPECT_EQ(counter.a, counter.b) << counter.name;

    const std::string json = analysis::compareJson(report);
    EXPECT_NE(json.find("\"type\":\"compare_report\""),
              std::string::npos);
    EXPECT_NE(json.find("\"verdict\":\"ok\""), std::string::npos);
    const std::string text = analysis::compareText(report);
    EXPECT_NE(text.find("no regressions"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TimelineCompare, CatchesACoverageRegression)
{
    const std::string path_a = "/tmp/sp_timeline_test_reg_a.jsonl";
    const std::string path_b = "/tmp/sp_timeline_test_reg_b.jsonl";
    writeFile(
        path_a,
        "{\"type\":\"timeline_header\",\"version\":1,"
        "\"ring_capacity\":8,\"timing\":false}\n"
        "{\"type\":\"timeline_sample\",\"execs\":100,\"edges\":50,"
        "\"blocks\":40,\"crashes\":0,\"corpus\":10,\"counters\":{},"
        "\"gauges\":{},\"hists\":{}}\n"
        "{\"type\":\"timeline_sample\",\"execs\":200,\"edges\":80,"
        "\"blocks\":60,\"crashes\":1,\"corpus\":14,\"counters\":{},"
        "\"gauges\":{},\"hists\":{}}\n");
    writeFile(
        path_b,
        "{\"type\":\"timeline_header\",\"version\":1,"
        "\"ring_capacity\":8,\"timing\":false}\n"
        "{\"type\":\"timeline_sample\",\"execs\":100,\"edges\":30,"
        "\"blocks\":25,\"crashes\":0,\"corpus\":9,\"counters\":{},"
        "\"gauges\":{},\"hists\":{}}\n"
        "{\"type\":\"timeline_sample\",\"execs\":200,\"edges\":40,"
        "\"blocks\":30,\"crashes\":0,\"corpus\":11,\"counters\":{},"
        "\"gauges\":{},\"hists\":{}}\n");

    const auto log_a = analysis::TimelineLog::load(path_a);
    const auto log_b = analysis::TimelineLog::load(path_b);
    ASSERT_TRUE(log_a.ok()) << log_a.error;
    ASSERT_TRUE(log_b.ok()) << log_b.error;

    const auto report = analysis::compare(log_a, log_b);
    EXPECT_EQ(report.aligned_samples, 2u);
    EXPECT_TRUE(report.regressed());
    EXPECT_EQ(report.final_edges.verdict,
              analysis::Verdict::Regressed);
    EXPECT_EQ(report.coverage_auc.verdict,
              analysis::Verdict::Regressed);
    // B never reaches 90% of A's final edges.
    EXPECT_EQ(report.time_to_target.verdict,
              analysis::Verdict::Regressed);
    const std::string json = analysis::compareJson(report);
    EXPECT_NE(json.find("\"verdict\":\"regressed\""),
              std::string::npos);

    // The improvement direction is not a regression.
    const auto reversed = analysis::compare(log_b, log_a);
    EXPECT_FALSE(reversed.regressed());
    EXPECT_EQ(reversed.final_edges.verdict,
              analysis::Verdict::Improved);

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(TimelineCompare, LoadRejectsMissingAndMalformedArtifacts)
{
    EXPECT_FALSE(
        analysis::TimelineLog::load("/tmp/sp_timeline_no_such_file")
            .ok());

    const std::string path = "/tmp/sp_timeline_test_bad.jsonl";
    writeFile(path, "{\"type\":\"timeline_sample\",\"execs\":1}\n");
    const auto no_header = analysis::TimelineLog::load(path);
    EXPECT_FALSE(no_header.ok());
    EXPECT_NE(no_header.error.find("timeline_header"),
              std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace sp::obs
