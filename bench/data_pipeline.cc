// Measures the data-pipeline additions: shard store write/load/merge
// throughput, streaming-vs-in-memory training cost (the §3.3 training
// loop fed from disk), and the end-to-end harvest rate of a campaign
// with the continual-learning hook installed.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "core/train.h"
#include "data/harvest.h"
#include "data/loader.h"
#include "data/store.h"
#include "fuzz/campaign.h"

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

}  // namespace

int
main()
{
    using namespace sp;
    std::printf("=== Data pipeline: store, loader, harvest ===\n\n");

    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    auto opts = spbench::evalDatasetOptions();
    auto start = std::chrono::steady_clock::now();
    auto dataset = core::collectDataset(kernel, opts);
    const double collect_s = secondsSince(start);
    const size_t examples = dataset.train.size() +
                            dataset.valid.size() + dataset.eval.size();
    std::printf("collect : %zu bases, %zu examples in %.2fs\n",
                dataset.bases.size(), examples, collect_s);

    const std::string dir = "/tmp/spbench_data_pipeline";
    start = std::chrono::steady_clock::now();
    const auto paths = data::writeStore(dataset, dir, 4);
    const double write_s = secondsSince(start);
    const auto stats = data::statStore(paths);
    std::printf("write   : %zu shards, %llu bytes in %.3fs "
                "(%.1f MB/s)\n",
                paths.size(),
                static_cast<unsigned long long>(stats.totals.bytes),
                write_s,
                static_cast<double>(stats.totals.bytes) / 1e6 / write_s);

    start = std::chrono::steady_clock::now();
    const auto merged = data::mergeStore(paths, dir + "/merged.spds");
    const double merge_s = secondsSince(start);
    std::printf("merge   : %llu bases, %llu examples in %.3fs\n",
                static_cast<unsigned long long>(merged.bases),
                static_cast<unsigned long long>(merged.examples()),
                merge_s);

    start = std::chrono::steady_clock::now();
    auto loaded = data::loadStore(kernel, {dir + "/merged.spds"});
    const double load_s = secondsSince(start);
    std::printf("load    : %zu bases re-executed + verified in %.2fs\n",
                loaded.bases.size(), load_s);

    // Streaming vs in-memory training on the loaded store.
    core::TrainOptions train_opts;
    train_opts.epochs = 2;
    train_opts.max_train_examples = 400;
    core::PmmConfig config;
    config.dim = 24;
    config.token_dim = 8;
    {
        core::Pmm model(config);
        start = std::chrono::steady_clock::now();
        auto history = core::trainPmm(model, loaded, train_opts);
        std::printf("train   : in-memory %.2fs (valid F1 %.3f)\n",
                    secondsSince(start), history.best_valid.f1);
    }
    {
        core::Pmm model(config);
        data::StreamSource source(loaded);
        start = std::chrono::steady_clock::now();
        auto history =
            core::trainPmmFromSource(model, loaded, source, train_opts);
        std::printf("train   : streaming %.2fs (valid F1 %.3f)\n",
                    secondsSince(start), history.best_valid.f1);
    }

    // Harvest rate of a live campaign.
    data::HarvestOptions harvest_opts;
    harvest_opts.dir = dir;
    harvest_opts.shard_name = "harvest.spds";
    data::Harvester harvester(kernel, harvest_opts);
    fuzz::CampaignOptions campaign_opts;
    campaign_opts.workers = 4;
    campaign_opts.fuzz.exec_budget = 4 * spbench::kHourInExecs;
    campaign_opts.on_mutation = harvester.hook();
    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    start = std::chrono::steady_clock::now();
    engine->run();
    harvester.close();
    const double fuzz_s = secondsSince(start);
    const auto hstats = harvester.stats();
    std::printf("harvest : %llu examples over %llu bases in %.2fs "
                "(%llu offered, %llu dropped, %llu discarded)\n",
                static_cast<unsigned long long>(hstats.examples),
                static_cast<unsigned long long>(hstats.bases), fuzz_s,
                static_cast<unsigned long long>(hstats.offered),
                static_cast<unsigned long long>(hstats.dropped),
                static_cast<unsigned long long>(hstats.discarded));
    return 0;
}
