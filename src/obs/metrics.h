/**
 * @file
 * Process-wide metrics registry: named counters, gauges and histograms
 * shared by every layer of the fuzz/train/infer stack.
 *
 * Hot-path discipline: counters and gauges are single relaxed atomics
 * (always on, ~1 ns); histograms hash the calling thread onto one of a
 * small set of shards so concurrent recorders almost never contend, and
 * the shards are folded together only at snapshot time via
 * RunningStat::merge()/Distribution::merge(). Timed spans (SP_TIMED in
 * timer.h) additionally gate on obs::timingEnabled() so a run with no
 * telemetry sink pays one relaxed load per span and nothing else.
 *
 * Metric handles returned by Registry are stable for the registry's
 * lifetime; instrumentation sites look a name up once (function-local
 * static) and keep the reference.
 */
#ifndef SP_OBS_METRICS_H
#define SP_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.h"

namespace sp::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (queue depths, rates). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Merged view of a histogram at one point in time. */
struct HistogramSnapshot
{
    RunningStat stat;       ///< exact count/mean/min/max/stddev
    Distribution samples;   ///< retained samples for percentiles
};

/**
 * Latency/size distribution. record() is safe from any thread: the
 * caller lands on a thread-hashed shard whose mutex is effectively
 * uncontended. Each shard keeps exact running moments plus a bounded
 * reservoir sample for percentile queries.
 */
class Histogram
{
  public:
    /** Samples retained per shard (reservoir beyond that). */
    static constexpr size_t kShardSampleCap = 8192;

    void record(double x);

    /** Total observations across all shards. */
    uint64_t count() const;

    /** Merge every shard into one stat + sample set. */
    HistogramSnapshot snapshot() const;

    /**
     * Merge only the exact moments (count/mean/min/max/stddev), no
     * sample copy. O(shards) instead of O(retained samples) — the
     * per-checkpoint timeline sampler's path, where a full snapshot()
     * of every histogram would dominate the checkpoint budget.
     */
    RunningStat stat() const;

    /** Drop all shards' contents. */
    void reset();

  private:
    static constexpr size_t kShards = 8;

    struct Shard
    {
        mutable std::mutex mu;
        RunningStat stat;
        Distribution samples;
        uint64_t lcg = 0x9e3779b97f4a7c15ULL;  ///< reservoir randomness
    };

    Shard &shardForThisThread();

    std::array<Shard, kShards> shards_;
};

/**
 * Named metric registry. `Registry::global()` is the process-wide
 * instance every SP_TIMED span and instrumentation site uses; separate
 * instances can be constructed for tests.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry. */
    static Registry &global();

    /** Find-or-create. Returned references stay valid for the
     *  registry's lifetime. A name holds at most one metric kind;
     *  asking for the same name with a different kind panics. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * One JSON object over everything registered:
     * {"counters":{..},"gauges":{..},"histograms":{name:
     * {"count":..,"mean":..,"min":..,"max":..,"stddev":..,
     *  "p50":..,"p90":..,"p95":..,"p99":..}}}.
     * Keys are emitted in sorted order (std::map) so snapshots diff
     * cleanly across runs.
     */
    std::string snapshotJson() const;

    /** Zero every registered metric (keeps the names). */
    void reset();

    /**
     * Call the matching visitor for every registered metric, in
     * sorted name order, under the registry lock. Visitors must not
     * re-enter the registry. Renders (Prometheus exposition, status
     * snapshots) build on this instead of each growing a friend.
     */
    void visit(
        const std::function<void(const std::string &, const Counter &)>
            &on_counter,
        const std::function<void(const std::string &, const Gauge &)>
            &on_gauge,
        const std::function<void(const std::string &,
                                 const Histogram &)> &on_histogram)
        const;

    /**
     * Drop every gauge whose name starts with `prefix`; returns how
     * many were removed. ONLY safe for names no call site caches a
     * handle to (handles are otherwise stable for the registry's
     * lifetime) — in practice the per-campaign worker-tagged gauges
     * (`fuzz.worker_busy_ratio.w3`), which would otherwise linger in
     * snapshots of later campaigns run with fewer workers.
     */
    size_t unregisterGaugesWithPrefix(const std::string &prefix);

    /**
     * Zero every gauge whose name starts with `prefix` (names stay
     * registered, so cached handles stay valid); returns how many
     * were reset. The campaign-scoping tool for gauges that hot paths
     * hold handles to (`snowplow.cache_hit_ratio`), where unregister
     * would either dangle the handle or force a registry lookup per
     * update.
     */
    size_t resetGaugesWithPrefix(const std::string &prefix);

    /**
     * Zero every counter whose name starts with `prefix` (cached
     * handles stay valid), returning how many were reset. Campaign
     * scoping for counters hot paths hold handles to (`covmap.*`,
     * `snowplow.cache.*`), which would otherwise accumulate across
     * back-to-back campaigns in one process.
     */
    size_t resetCountersWithPrefix(const std::string &prefix);

    /**
     * Drop the contents of every histogram whose name starts with
     * `prefix` (cached handles stay valid), returning how many were
     * reset. The histogram analog of resetCountersWithPrefix: without
     * it, back-to-back campaigns in one process bleed latency
     * distributions (`exec.restore_us`, `nn.gemm_us`) into each
     * other's timelines.
     */
    size_t resetDistributionsWithPrefix(const std::string &prefix);

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Gate for the timed-span hot paths. Off by default; installing a
 * telemetry sink (telemetry.h) turns it on, and tests/benchmarks can
 * flip it directly.
 */
bool timingEnabled();
void setTimingEnabled(bool enabled);

/**
 * Name of a per-worker metric: `base` tagged with the worker id
 * (e.g. workerMetric("fuzz.worker_busy_ratio", 2) ==
 * "fuzz.worker_busy_ratio.w2"). Campaign workers report through this
 * so one registry holds every worker's lane side by side.
 */
std::string workerMetric(const std::string &base, size_t worker);

}  // namespace sp::obs

#endif  // SP_OBS_METRICS_H
