#include "obs/covmap.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace sp::obs {

namespace {

/** Registry handles for the covmap metrics (looked up once). */
struct CovMetrics
{
    Counter &windows;
    Counter &stray_edges;
    Gauge &resident_bytes;
    Gauge &blocks_hit;
    Gauge &edges_hit;
    Gauge &frontier_size;
    Histogram &merge_us;

    static CovMetrics &
    get()
    {
        auto &reg = Registry::global();
        static CovMetrics metrics{
            reg.counter("covmap.windows"),
            reg.counter("covmap.stray_edges"),
            reg.gauge("covmap.resident_bytes"),
            reg.gauge("covmap.blocks_hit"),
            reg.gauge("covmap.edges_hit"),
            reg.gauge("covmap.frontier_size"),
            reg.histogram("covmap.merge_us"),
        };
        return metrics;
    }
};

/** Append `[[k,v],...]` for every non-zero delta (sorted by key). */
void
appendDeltaPairs(std::string &out, const std::vector<uint64_t> &now,
                 const std::vector<uint64_t> &before)
{
    out += '[';
    bool first = true;
    for (size_t i = 0; i < now.size(); ++i) {
        const uint64_t delta = now[i] - before[i];
        if (delta == 0)
            continue;
        if (!first)
            out += ',';
        first = false;
        out += '[';
        out += std::to_string(i);
        out += ',';
        out += std::to_string(delta);
        out += ']';
    }
    out += ']';
}

}  // namespace

CovMapPlan
CovMapPlan::build(
    size_t num_blocks,
    const std::vector<std::pair<uint32_t, uint32_t>> &static_edges)
{
    CovMapPlan plan;
    plan.num_blocks = num_blocks;
    plan.edges = static_edges;
    std::sort(plan.edges.begin(), plan.edges.end());
    plan.edges.erase(std::unique(plan.edges.begin(), plan.edges.end()),
                     plan.edges.end());
    plan.succ.assign(num_blocks, {kNone, kNone});
    plan.succ_edge.assign(num_blocks, {kNone, kNone});
    for (uint32_t e = 0; e < plan.edges.size(); ++e) {
        const auto [from, to] = plan.edges[e];
        if (from >= num_blocks)
            continue;
        for (size_t slot = 0; slot < 2; ++slot) {
            if (plan.succ[from][slot] == kNone) {
                plan.succ[from][slot] = to;
                plan.succ_edge[from][slot] = e;
                break;
            }
        }
    }
    return plan;
}

uint32_t
CovMapPlan::edgeIndex(uint32_t from, uint32_t to) const
{
    if (from >= num_blocks)
        return kNone;
    for (size_t slot = 0; slot < 2; ++slot) {
        if (succ[from][slot] == to)
            return succ_edge[from][slot];
    }
    return kNone;
}

CovShard::CovShard(const CovMapPlan *plan) : plan_(plan)
{
    block_hits_ =
        std::make_unique<std::atomic<uint64_t>[]>(plan->num_blocks);
    edge_hits_ =
        std::make_unique<std::atomic<uint64_t>[]>(plan->numEdges());
    for (size_t i = 0; i < plan->num_blocks; ++i)
        block_hits_[i].store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < plan->numEdges(); ++i)
        edge_hits_[i].store(0, std::memory_order_relaxed);
}

namespace {

/**
 * Single-writer increment: each counter has exactly one writing
 * thread (the shard's worker), so a relaxed load+store pair is the
 * same count as fetch_add without the read-modify-write lock — the
 * difference between a plain add and `lock xadd` on every visited
 * block is most of the recording overhead budget.
 */
inline void
bump(std::atomic<uint64_t> &counter)
{
    counter.store(counter.load(std::memory_order_relaxed) + 1,
                  std::memory_order_relaxed);
}

}  // namespace

void
CovShard::recordTrace(const std::vector<uint32_t> &blocks)
{
    if (blocks.empty())
        return;
    const CovMapPlan &plan = *plan_;
    const size_t num_blocks = plan.num_blocks;
    std::atomic<uint64_t> *const block_hits = block_hits_.get();
    std::atomic<uint64_t> *const edge_hits = edge_hits_.get();

    // First block peeled so the loop body never tests for "no
    // predecessor yet".
    uint32_t prev = blocks[0];
    if (prev < num_blocks)
        bump(block_hits[prev]);
    for (size_t i = 1; i < blocks.size(); ++i) {
        const uint32_t block = blocks[i];
        if (block < num_blocks)
            bump(block_hits[block]);
        if (prev < num_blocks) {
            // Inlined edgeIndex: the two successor slots of `prev`.
            const auto &succ = plan.succ[prev];
            if (succ[0] == block)
                bump(edge_hits[plan.succ_edge[prev][0]]);
            else if (succ[1] == block)
                bump(edge_hits[plan.succ_edge[prev][1]]);
            else
                // Noise-inserted interrupt transitions and other
                // non-static pairs: tallied in aggregate so the hot
                // path never allocates.
                bump(stray_edges_);
        } else {
            bump(stray_edges_);
        }
        prev = block;
    }
}

uint64_t
CovShard::blockHits(uint32_t block) const
{
    return block < plan_->num_blocks
               ? block_hits_[block].load(std::memory_order_relaxed)
               : 0;
}

uint64_t
CovShard::edgeHits(uint32_t edge) const
{
    return edge < plan_->numEdges()
               ? edge_hits_[edge].load(std::memory_order_relaxed)
               : 0;
}

CovMap::CovMap(CovMapPlan plan, size_t workers)
    : plan_(std::move(plan))
{
    SP_ASSERT(workers > 0, "covmap needs at least one shard");
    shards_.reserve(workers);
    for (size_t w = 0; w < workers; ++w)
        shards_.emplace_back(new CovShard(&plan_));
    merged_blocks_.assign(plan_.num_blocks, 0);
    merged_edges_.assign(plan_.numEdges(), 0);
}

CovMap::~CovMap()
{
    if (log_ != nullptr)
        std::fclose(log_);
}

bool
CovMap::openLog(const std::string &path,
                const std::string &extra_header_json)
{
    std::lock_guard<std::mutex> lock(mu_);
    SP_ASSERT(log_ == nullptr, "covmap log already open");
    log_ = std::fopen(path.c_str(), "w");
    if (log_ == nullptr)
        return false;

    std::string header;
    header.reserve(64 + plan_.numEdges() * 12);
    header += "{\"type\":\"covmap_header\",\"version\":1,";
    header += "\"num_blocks\":" + std::to_string(plan_.num_blocks);
    header += ",\"num_edges\":" + std::to_string(plan_.numEdges());
    header += ",\"edges\":[";
    for (size_t e = 0; e < plan_.edges.size(); ++e) {
        if (e != 0)
            header += ',';
        header += '[';
        header += std::to_string(plan_.edges[e].first);
        header += ',';
        header += std::to_string(plan_.edges[e].second);
        header += ']';
    }
    header += ']';
    if (!extra_header_json.empty()) {
        header += ',';
        header += extra_header_json;
    }
    header += "}\n";
    std::fwrite(header.data(), 1, header.size(), log_);
    return true;
}

void
CovMap::foldShards(std::vector<uint64_t> &blocks,
                   std::vector<uint64_t> &edges, uint64_t &stray) const
{
    blocks.assign(plan_.num_blocks, 0);
    edges.assign(plan_.numEdges(), 0);
    stray = 0;
    for (const auto &shard : shards_) {
        for (size_t i = 0; i < plan_.num_blocks; ++i) {
            blocks[i] += shard->block_hits_[i].load(
                std::memory_order_relaxed);
        }
        for (size_t i = 0; i < plan_.numEdges(); ++i) {
            edges[i] +=
                shard->edge_hits_[i].load(std::memory_order_relaxed);
        }
        stray += shard->stray_edges_.load(std::memory_order_relaxed);
    }
}

std::vector<FrontierEntry>
computeFrontier(const CovMapPlan &plan,
                const std::vector<uint64_t> &block_hits, size_t cap)
{
    std::vector<FrontierEntry> frontier;
    for (uint32_t b = 0; b < plan.num_blocks; ++b) {
        // Two-way branch guards only: a single-successor block whose
        // successor is unreached is a crash artifact, not a branch a
        // mutator could cross.
        if (block_hits[b] == 0 || plan.succ[b][1] == CovMapPlan::kNone)
            continue;
        for (size_t slot = 0; slot < 2; ++slot) {
            const uint32_t target = plan.succ[b][slot];
            if (target == CovMapPlan::kNone ||
                target >= plan.num_blocks || block_hits[target] != 0) {
                continue;
            }
            FrontierEntry entry;
            entry.target = target;
            entry.guard = b;
            entry.guard_hits = block_hits[b];
            frontier.push_back(entry);
        }
    }
    std::sort(frontier.begin(), frontier.end(),
              [](const FrontierEntry &a, const FrontierEntry &b) {
                  if (a.guard_hits != b.guard_hits)
                      return a.guard_hits > b.guard_hits;
                  return a.target < b.target;
              });
    if (cap > 0 && frontier.size() > cap)
        frontier.resize(cap);
    return frontier;
}

void
CovMap::mergeLocked(uint64_t execs, bool emit_window)
{
    // Wall-clock merge cost is telemetry, not campaign state: gate it
    // like every SP_TIMED span so sink-less runs keep the registry
    // free of machine-dependent values (timeline bit-reproducibility).
    const bool timed = timingEnabled();
    const uint64_t start_us = timed ? monotonicMicros() : 0;

    std::vector<uint64_t> blocks, edges;
    uint64_t stray = 0;
    foldShards(blocks, edges, stray);

    std::vector<uint32_t> new_blocks;
    size_t blocks_hit = 0;
    uint64_t total_hits = 0;
    for (uint32_t b = 0; b < blocks.size(); ++b) {
        total_hits += blocks[b];
        if (blocks[b] != 0) {
            ++blocks_hit;
            if (merged_blocks_[b] == 0)
                new_blocks.push_back(b);
        }
    }
    size_t edges_hit = 0;
    for (const uint64_t hits : edges)
        edges_hit += hits != 0;

    const auto frontier = computeFrontier(plan_, blocks, /*cap=*/0);

    if (emit_window && log_ != nullptr) {
        std::string line;
        line.reserve(256 + new_blocks.size() * 8);
        line += "{\"type\":\"covmap_window\",\"execs\":";
        line += std::to_string(execs);
        line += ",\"new_blocks\":[";
        for (size_t i = 0; i < new_blocks.size(); ++i) {
            if (i != 0)
                line += ',';
            line += std::to_string(new_blocks[i]);
        }
        line += "],\"block_deltas\":";
        appendDeltaPairs(line, blocks, merged_blocks_);
        line += ",\"edge_deltas\":";
        appendDeltaPairs(line, edges, merged_edges_);
        line += ",\"stray_edges\":";
        line += std::to_string(stray - merged_stray_);
        line += ",\"blocks_hit\":";
        line += std::to_string(blocks_hit);
        line += ",\"edges_hit\":";
        line += std::to_string(edges_hit);
        line += ",\"frontier_size\":";
        line += std::to_string(frontier.size());
        line += "}\n";
        std::fwrite(line.data(), 1, line.size(), log_);
    }

    CovMetrics &metrics = CovMetrics::get();
    metrics.stray_edges.inc(stray - merged_stray_);

    merged_blocks_ = std::move(blocks);
    merged_edges_ = std::move(edges);
    merged_stray_ = stray;

    summary_.execs = execs;
    if (emit_window)
        ++summary_.windows;
    summary_.blocks_hit = blocks_hit;
    summary_.edges_hit = edges_hit;
    summary_.total_block_hits = total_hits;
    summary_.stray_edges = stray;
    summary_.frontier_size = frontier.size();
    summary_.top_frontier.assign(
        frontier.begin(),
        frontier.begin() +
            std::min(frontier.size(), kSummaryFrontierCap));

    if (emit_window)
        metrics.windows.inc();
    metrics.blocks_hit.set(static_cast<double>(blocks_hit));
    metrics.edges_hit.set(static_cast<double>(edges_hit));
    metrics.frontier_size.set(static_cast<double>(frontier.size()));
    metrics.resident_bytes.set(static_cast<double>(residentBytes()));
    if (timed) {
        metrics.merge_us.record(
            static_cast<double>(monotonicMicros() - start_us));
    }
}

void
CovMap::onCheckpoint(uint64_t execs)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_)
        return;
    mergeLocked(execs, /*emit_window=*/true);
}

void
CovMap::finalize(uint64_t execs)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (finalized_)
        return;
    mergeLocked(execs, /*emit_window=*/true);
    finalized_ = true;
    if (log_ == nullptr)
        return;
    std::string line;
    line += "{\"type\":\"covmap_final\",\"execs\":";
    line += std::to_string(execs);
    line += ",\"windows\":";
    line += std::to_string(summary_.windows);
    line += ",\"blocks_hit\":";
    line += std::to_string(summary_.blocks_hit);
    line += ",\"edges_hit\":";
    line += std::to_string(summary_.edges_hit);
    line += ",\"stray_edges\":";
    line += std::to_string(summary_.stray_edges);
    line += ",\"frontier_size\":";
    line += std::to_string(summary_.frontier_size);
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), log_);
    std::fclose(log_);
    log_ = nullptr;
}

std::vector<uint64_t>
CovMap::mergedBlockHits() const
{
    std::vector<uint64_t> blocks, edges;
    uint64_t stray = 0;
    foldShards(blocks, edges, stray);
    return blocks;
}

std::vector<uint64_t>
CovMap::mergedEdgeHits() const
{
    std::vector<uint64_t> blocks, edges;
    uint64_t stray = 0;
    foldShards(blocks, edges, stray);
    return edges;
}

CovSummary
CovMap::summary() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return summary_;
}

std::string
CovMap::summaryJson() const
{
    const CovSummary snap = summary();
    std::string out;
    out.reserve(256);
    out += "{\"enabled\":true,\"execs\":";
    out += std::to_string(snap.execs);
    out += ",\"windows\":";
    out += std::to_string(snap.windows);
    out += ",\"blocks_total\":";
    out += std::to_string(plan_.num_blocks);
    out += ",\"blocks_hit\":";
    out += std::to_string(snap.blocks_hit);
    out += ",\"edges_total\":";
    out += std::to_string(plan_.numEdges());
    out += ",\"edges_hit\":";
    out += std::to_string(snap.edges_hit);
    out += ",\"total_block_hits\":";
    out += std::to_string(snap.total_block_hits);
    out += ",\"stray_edges\":";
    out += std::to_string(snap.stray_edges);
    out += ",\"frontier_size\":";
    out += std::to_string(snap.frontier_size);
    out += ",\"frontier\":[";
    for (size_t i = 0; i < snap.top_frontier.size(); ++i) {
        const FrontierEntry &entry = snap.top_frontier[i];
        if (i != 0)
            out += ',';
        out += "{\"target\":";
        out += std::to_string(entry.target);
        out += ",\"guard\":";
        out += std::to_string(entry.guard);
        out += ",\"guard_hits\":";
        out += std::to_string(entry.guard_hits);
        out += '}';
    }
    out += "]}";
    return out;
}

std::vector<FrontierEntry>
CovMap::frontierTargets(size_t cap) const
{
    return computeFrontier(plan_, mergedBlockHits(), cap);
}

size_t
CovMap::residentBytes() const
{
    const size_t per_shard =
        (plan_.num_blocks + plan_.numEdges()) * sizeof(uint64_t);
    const size_t plan_bytes =
        plan_.edges.size() * sizeof(plan_.edges[0]) +
        plan_.succ.size() *
            (sizeof(plan_.succ[0]) + sizeof(plan_.succ_edge[0]));
    return plan_bytes + per_shard * (shards_.size() + 1);
}

}  // namespace sp::obs
