// Tests for the staged campaign runtime: the virtual-time budget
// ledger, per-worker RNG stream splitting, the sharded corpus under
// concurrency, and the campaign engine itself — including the hard
// guarantee that a 1-worker campaign reproduces the legacy
// single-threaded fuzzer bit-for-bit.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/snowplow.h"
#include "fuzz/campaign.h"
#include "fuzz/fuzzer.h"
#include "kernel/subsystems.h"
#include "prog/gen.h"

namespace sp::fuzz {
namespace {

const kern::Kernel &
testKernel()
{
    static kern::Kernel kernel = [] {
        kern::KernelGenParams params;
        params.seed = 6;
        return kern::buildBaseKernel(params);
    }();
    return kernel;
}

FuzzOptions
smallCampaign(uint64_t seed)
{
    FuzzOptions opts;
    opts.exec_budget = 1500;
    opts.seed = seed;
    opts.seed_corpus_size = 20;
    opts.checkpoint_every = 250;
    return opts;
}

void
expectSameReport(const FuzzReport &a, const FuzzReport &b)
{
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_EQ(a.timeline[i].execs, b.timeline[i].execs) << i;
        EXPECT_EQ(a.timeline[i].edges, b.timeline[i].edges) << i;
        EXPECT_EQ(a.timeline[i].blocks, b.timeline[i].blocks) << i;
        EXPECT_EQ(a.timeline[i].crashes, b.timeline[i].crashes) << i;
    }
    EXPECT_EQ(a.final_edges, b.final_edges);
    EXPECT_EQ(a.final_blocks, b.final_blocks);
    EXPECT_EQ(a.execs, b.execs);
    EXPECT_EQ(a.corpus_size, b.corpus_size);
    EXPECT_EQ(a.final_crashes, b.final_crashes);
    for (size_t lane = 0; lane < kMutationLanes; ++lane) {
        EXPECT_EQ(a.lanes[lane].produced, b.lanes[lane].produced)
            << lane;
        EXPECT_EQ(a.lanes[lane].admitted, b.lanes[lane].admitted)
            << lane;
    }
}

TEST(BudgetLedger, GrantsNeverSpanCheckpointBoundaries)
{
    BudgetLedger ledger(1000, 64);
    // First claim starts at 0: 64 - 0 % 64 = 64 slots max.
    auto grant = ledger.claim(100);
    EXPECT_EQ(grant.begin, 0u);
    EXPECT_EQ(grant.count, 64u);
    // Mid-grid claim is trimmed to the next boundary.
    grant = ledger.claim(100);
    EXPECT_EQ(grant.begin, 64u);
    EXPECT_EQ(grant.count, 64u);
    // Small claims inside one grid cell pass through.
    grant = ledger.claim(3);
    EXPECT_EQ(grant.begin, 128u);
    EXPECT_EQ(grant.count, 3u);
    grant = ledger.claim(100);
    EXPECT_EQ(grant.begin, 131u);
    EXPECT_EQ(grant.count, 61u);  // up to 192, not past it
}

TEST(BudgetLedger, ExhaustsExactlyAtBudget)
{
    BudgetLedger ledger(10, 4);
    uint64_t total = 0;
    while (true) {
        auto grant = ledger.claim(3);
        if (grant.empty())
            break;
        total += grant.count;
    }
    EXPECT_EQ(total, 10u);
    EXPECT_TRUE(ledger.exhausted());
    EXPECT_EQ(ledger.claimed(), 10u);
    // Further bounded claims stay empty.
    EXPECT_TRUE(ledger.claim(1).empty());
}

TEST(BudgetLedger, UnboundedClaimsIgnoreTheBudget)
{
    BudgetLedger ledger(5, 100);
    for (int i = 0; i < 8; ++i) {
        auto grant = ledger.claim(1, /*bounded=*/false);
        EXPECT_EQ(grant.count, 1u);
        ledger.complete(grant);
    }
    // The seed phase overshot the budget; bounded claims see that.
    EXPECT_TRUE(ledger.exhausted());
    EXPECT_TRUE(ledger.claim(1).empty());
    EXPECT_EQ(ledger.completed(), 8u);
}

TEST(BudgetLedger, StartOffsetResumesTheGrid)
{
    BudgetLedger ledger(100, 10, /*start=*/37);
    auto grant = ledger.claim(50);
    EXPECT_EQ(grant.begin, 37u);
    EXPECT_EQ(grant.count, 3u);  // up to 40, the next boundary
}

TEST(BudgetLedger, PrefixWatermarkAdvancesOnlyContiguously)
{
    BudgetLedger ledger(12, 4);
    const auto g0 = ledger.claim(4);  // [0, 4)
    const auto g1 = ledger.claim(4);  // [4, 8)
    const auto g2 = ledger.claim(4);  // [8, 12)

    // Out-of-order completions raise the total but not the prefix:
    // a checkpoint at slot 4 must still see slot 1 as outstanding.
    ledger.complete(g1);
    ledger.complete(g2);
    EXPECT_EQ(ledger.completed(), 8u);
    EXPECT_EQ(ledger.prefixCompleted(), 0u);

    // Closing the gap merges every stranded run in one step.
    ledger.complete(g0);
    EXPECT_EQ(ledger.completed(), 12u);
    EXPECT_EQ(ledger.prefixCompleted(), 12u);
}

TEST(BudgetLedger, WaitForPrefixBlocksUntilEarlierSlotsFinish)
{
    BudgetLedger ledger(8, 4);
    const auto g0 = ledger.claim(4);
    const auto g1 = ledger.claim(4);
    ledger.complete(g1);  // later slots landing early must not unblock

    std::atomic<bool> woke{false};
    std::thread waiter([&] {
        ledger.waitForPrefix(4);
        woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(woke.load());
    ledger.complete(g0);
    waiter.join();
    EXPECT_TRUE(woke.load());
    EXPECT_EQ(ledger.prefixCompleted(), 8u);

    // Satisfied waits return immediately.
    ledger.waitForPrefix(8);
}

TEST(SplitSeed, StreamZeroIsTheIdentity)
{
    EXPECT_EQ(splitSeed(12345, 0), 12345u);
    EXPECT_EQ(splitSeed(0, 0), 0u);
}

TEST(SplitSeed, StreamsDecorrelate)
{
    // Different streams of one seed, and the same stream of different
    // seeds, must all differ.
    EXPECT_NE(splitSeed(1, 1), splitSeed(1, 2));
    EXPECT_NE(splitSeed(1, 1), splitSeed(2, 1));
    EXPECT_NE(splitSeed(1, 1), 1u);
    // Nearby worker ids produce streams whose first draws diverge.
    Rng a(splitSeed(99, 1)), b(splitSeed(99, 2));
    EXPECT_NE(a.next(), b.next());
}

TEST(ShardedCorpus, ConcurrentAdmissionKeepsCountsConsistent)
{
    const auto &kernel = testKernel();
    constexpr size_t kThreads = 4;
    Corpus corpus(kThreads);

    // Pre-generate distinct programs + results per thread.
    std::vector<std::vector<prog::Prog>> programs(kThreads);
    std::vector<std::vector<exec::ExecResult>> results(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        Rng rng(1000 + t);
        exec::Executor executor(kernel);
        programs[t] = prog::generateCorpus(rng, kernel.table(), 40);
        for (const auto &program : programs[t])
            results[t].push_back(executor.run(program));
    }

    std::atomic<size_t> admitted{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (size_t i = 0; i < programs[t].size(); ++i) {
                if (corpus.maybeAdd(programs[t][i], results[t][i],
                                    t * 100 + i))
                    admitted.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(corpus.size(), admitted.load());
    EXPECT_EQ(corpus.edgeCount(), corpus.totalCoverage().edgeCount());
    EXPECT_EQ(corpus.blockCount(), corpus.totalCoverage().blockCount());
    ASSERT_GT(corpus.size(), 0u);
    // Every admitted entry is reachable through the global index.
    for (size_t i = 0; i < corpus.size(); ++i)
        EXPECT_NE(corpus.entry(i).program.calls.size(), 0u);
    // pick() hits multiple shards.
    Rng rng(7);
    std::unordered_set<uint64_t> seen;
    for (int i = 0; i < 300; ++i)
        seen.insert(corpus.pick(rng).content_hash);
    EXPECT_GT(seen.size(), 1u);
}

TEST(CampaignEngine, OneWorkerMatchesLegacyFuzzerSyzkaller)
{
    const auto &kernel = testKernel();
    const auto opts = smallCampaign(33);

    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<mut::RandomLocalizer>());
    const auto legacy = fuzzer.run();

    CampaignOptions campaign_opts;
    campaign_opts.workers = 1;
    campaign_opts.fuzz = opts;
    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    const auto staged = engine->run();

    expectSameReport(legacy, staged);
    EXPECT_EQ(fuzzer.crashes().uniqueCrashes(),
              engine->crashes().uniqueCrashes());
}

TEST(CampaignEngine, OneWorkerMatchesLegacyFuzzerSnowplow)
{
    const auto &kernel = testKernel();
    const auto opts = smallCampaign(77);
    core::Pmm model;  // deterministic default-initialized weights

    Fuzzer fuzzer(kernel, opts,
                  std::make_unique<core::PmmLocalizer>(kernel, model));
    const auto legacy = fuzzer.run();

    CampaignOptions campaign_opts;
    campaign_opts.workers = 1;
    campaign_opts.fuzz = opts;
    auto engine =
        core::makeSnowplowCampaign(kernel, model, campaign_opts);
    const auto staged = engine->run();

    expectSameReport(legacy, staged);
}

TEST(CampaignEngine, RunsAreDeterministicGivenSeed)
{
    const auto &kernel = testKernel();
    CampaignOptions campaign_opts;
    campaign_opts.workers = 1;
    campaign_opts.fuzz = smallCampaign(5);

    auto first = core::makeSyzkallerCampaign(kernel, campaign_opts);
    auto second = core::makeSyzkallerCampaign(kernel, campaign_opts);
    expectSameReport(first->run(), second->run());
}

TEST(CampaignEngine, MultiWorkerKeepsTheCheckpointGrid)
{
    const auto &kernel = testKernel();
    CampaignOptions campaign_opts;
    campaign_opts.workers = 4;
    campaign_opts.fuzz = smallCampaign(11);
    campaign_opts.fuzz.exec_budget = 2000;

    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    const auto report = engine->run();

    // Exactly the execution grid the single-worker loop would emit.
    ASSERT_EQ(report.timeline.size(), 2000u / 250u);
    for (size_t i = 0; i < report.timeline.size(); ++i)
        EXPECT_EQ(report.timeline[i].execs, (i + 1) * 250);
    // The timeline is monotone: coverage and crashes never regress.
    for (size_t i = 1; i < report.timeline.size(); ++i) {
        EXPECT_GE(report.timeline[i].edges,
                  report.timeline[i - 1].edges);
        EXPECT_GE(report.timeline[i].blocks,
                  report.timeline[i - 1].blocks);
        EXPECT_GE(report.timeline[i].crashes,
                  report.timeline[i - 1].crashes);
    }
    // Bounded claims stop exactly at the budget.
    EXPECT_EQ(report.execs, 2000u);
    EXPECT_EQ(report.final_edges, report.timeline.back().edges);
}

TEST(CampaignEngine, LaneCountsAreConsistent)
{
    const auto &kernel = testKernel();
    CampaignOptions campaign_opts;
    campaign_opts.workers = 2;
    campaign_opts.fuzz = smallCampaign(21);

    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    const auto report = engine->run();

    uint64_t produced = 0, admitted = 0;
    for (size_t lane = 0; lane < kMutationLanes; ++lane) {
        produced += report.lanes[lane].produced;
        admitted += report.lanes[lane].admitted;
    }
    // Every execution is attributed to exactly one lane, and every
    // corpus entry to exactly one admission.
    EXPECT_EQ(produced, report.execs);
    EXPECT_EQ(admitted, report.corpus_size);
    EXPECT_GT(report.lane(MutationLane::Seed).produced, 0u);
    EXPECT_GT(report.lane(MutationLane::Argument).produced, 0u);
    EXPECT_GT(report.lane(MutationLane::Structural).produced, 0u);
}

TEST(CampaignEngine, SchedulerSeamIsHonored)
{
    const auto &kernel = testKernel();
    CampaignOptions campaign_opts;
    campaign_opts.workers = 1;
    campaign_opts.fuzz = smallCampaign(3);
    std::atomic<uint64_t> picks{0};
    campaign_opts.fuzz.choose_test =
        [&picks](const Corpus &corpus,
                 Rng &rng) -> const CorpusEntry & {
        picks.fetch_add(1);
        return corpus.entry(rng.below(corpus.size()));
    };

    auto engine = core::makeSyzkallerCampaign(kernel, campaign_opts);
    const auto report = engine->run();
    EXPECT_GT(picks.load(), 0u);
    EXPECT_EQ(report.execs, campaign_opts.fuzz.exec_budget);
}

}  // namespace
}  // namespace sp::fuzz
