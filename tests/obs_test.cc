// Unit tests for src/obs: counter/gauge/histogram semantics, concurrent
// increments, snapshotJson round-trip, the SP_TIMED span macro, and the
// JSONL telemetry sink's event format.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/statusd.h"
#include "obs/telemetry.h"
#include "obs/timer.h"

namespace sp::obs {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(Histogram, MomentsAndPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    EXPECT_EQ(h.count(), 100u);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.stat.count(), 100u);
    EXPECT_DOUBLE_EQ(snap.stat.mean(), 50.5);
    EXPECT_DOUBLE_EQ(snap.stat.min(), 1.0);
    EXPECT_DOUBLE_EQ(snap.stat.max(), 100.0);
    EXPECT_DOUBLE_EQ(snap.samples.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(snap.samples.percentile(99), 99.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, ReservoirKeepsCountExactPastCap)
{
    Histogram h;
    const size_t n = Histogram::kShardSampleCap + 500;
    for (size_t i = 0; i < n; ++i)
        h.record(1.0);
    // All records land on the calling thread's shard; the retained
    // sample set is capped but the running moments stay exact.
    EXPECT_EQ(h.count(), n);
    const auto snap = h.snapshot();
    EXPECT_EQ(snap.stat.count(), n);
    EXPECT_LE(snap.samples.count(), Histogram::kShardSampleCap);
    EXPECT_DOUBLE_EQ(snap.samples.percentile(50), 1.0);
}

TEST(Registry, FindOrCreateReturnsStableHandles)
{
    Registry reg;
    Counter &a = reg.counter("x.count");
    Counter &b = reg.counter("x.count");
    EXPECT_EQ(&a, &b);
    a.inc(7);
    EXPECT_EQ(b.value(), 7u);
    Gauge &g = reg.gauge("x.gauge");
    g.set(2.0);
    EXPECT_EQ(reg.gauge("x.gauge").value(), 2.0);
    reg.histogram("x.hist").record(1.0);
    EXPECT_EQ(reg.histogram("x.hist").count(), 1u);
}

TEST(Registry, ConcurrentIncrementsFromFourThreads)
{
    Registry reg;
    Counter &counter = reg.counter("threads.count");
    Histogram &hist = reg.histogram("threads.hist");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                counter.inc();
                hist.record(static_cast<double>(t));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads * kPerThread));
    const auto snap = hist.snapshot();
    EXPECT_EQ(snap.stat.count(),
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_DOUBLE_EQ(snap.stat.min(), 0.0);
    EXPECT_DOUBLE_EQ(snap.stat.max(), kThreads - 1.0);
}

TEST(Registry, SnapshotJsonRoundTrip)
{
    Registry reg;
    reg.counter("fuzz.execs").inc(5000);
    reg.gauge("infer.queue_depth").set(3.0);
    for (int i = 1; i <= 4; ++i)
        reg.histogram("exec.run_us").record(static_cast<double>(i));

    const std::string json = reg.snapshotJson();
    // Structural sanity: balanced braces, one top-level object.
    int depth = 0, min_depth = 1;
    for (size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '{')
            ++depth;
        if (json[i] == '}')
            --depth;
        if (i > 0 && i + 1 < json.size())
            min_depth = std::min(min_depth, depth);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_GE(min_depth, 1);

    // Every registered metric surfaces with its value.
    EXPECT_NE(json.find("\"fuzz.execs\":5000"), std::string::npos);
    EXPECT_NE(json.find("\"infer.queue_depth\":3"), std::string::npos);
    EXPECT_NE(json.find("\"exec.run_us\":{\"count\":4"),
              std::string::npos);
    EXPECT_NE(json.find("\"p95\":"), std::string::npos);
    EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
}

TEST(Registry, ResetZeroesEverything)
{
    Registry reg;
    reg.counter("a").inc(3);
    reg.gauge("b").set(4.0);
    reg.histogram("c").record(5.0);
    reg.reset();
    EXPECT_EQ(reg.counter("a").value(), 0u);
    EXPECT_EQ(reg.gauge("b").value(), 0.0);
    EXPECT_EQ(reg.histogram("c").count(), 0u);
}

TEST(ScopedTimer, RecordsOnlyWhenTimingEnabled)
{
    Histogram h;
    setTimingEnabled(false);
    {
        ScopedTimer span(h);
    }
    EXPECT_EQ(h.count(), 0u);
    setTimingEnabled(true);
    {
        ScopedTimer span(h);
    }
    setTimingEnabled(false);
    ASSERT_EQ(h.count(), 1u);
    EXPECT_GE(h.snapshot().stat.min(), 0.0);
}

TEST(ScopedTimer, SpTimedMacroFeedsGlobalRegistry)
{
    Histogram &hist =
        Registry::global().histogram("obs_test.sp_timed_us");
    hist.reset();
    setTimingEnabled(true);
    {
        SP_TIMED("obs_test.sp_timed_us");
    }
    setTimingEnabled(false);
    EXPECT_EQ(hist.count(), 1u);
}

TEST(Field, EscapesStringsAndFormatsScalars)
{
    std::string out;
    Field("k\"ey", "va\\l\nue").appendTo(out);
    EXPECT_EQ(out, "\"k\\\"ey\":\"va\\\\l\\nue\"");

    out.clear();
    Field("n", uint64_t{18446744073709551615ull}).appendTo(out);
    EXPECT_EQ(out, "\"n\":18446744073709551615");

    out.clear();
    Field("b", true).appendTo(out);
    EXPECT_EQ(out, "\"b\":true");

    out.clear();
    Field("i", -3).appendTo(out);
    EXPECT_EQ(out, "\"i\":-3");
}

TEST(TelemetrySink, WritesOneJsonObjectPerLine)
{
    const std::string path = "/tmp/sp_obs_test_events.jsonl";
    {
        TelemetrySink sink({.path = path, .flush_every = 1});
        sink.event("alpha", {{"x", 1}, {"name", "first"}});
        sink.event("beta", {{"ok", true}, {"rate", 0.5}});
        EXPECT_EQ(sink.eventsWritten(), 2u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].find("{\"ev\":\"alpha\",\"t_us\":"), 0u);
    EXPECT_NE(lines[0].find("\"x\":1"), std::string::npos);
    EXPECT_NE(lines[0].find("\"name\":\"first\""), std::string::npos);
    EXPECT_EQ(lines[0].back(), '}');
    EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
    EXPECT_NE(lines[1].find("\"rate\":0.5"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetrySink, InstallShutdownAppendsRegistrySnapshot)
{
    const std::string path = "/tmp/sp_obs_test_snapshot.jsonl";
    installSink({.path = path});
    ASSERT_NE(sink(), nullptr);
    EXPECT_TRUE(timingEnabled());
    sink()->event("ping", {{"n", 1}});
    shutdownSink();
    setTimingEnabled(false);
    EXPECT_EQ(sink(), nullptr);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"ev\":\"ping\""), std::string::npos);
    EXPECT_EQ(lines[1].find("{\"ev\":\"registry_snapshot\""), 0u);
    EXPECT_NE(lines[1].find("\"registry\":{\"counters\":{"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetrySink, ShutdownIsIdempotent)
{
    const std::string path = "/tmp/sp_obs_test_idempotent.jsonl";
    installSink({.path = path});
    ASSERT_NE(sink(), nullptr);
    shutdownSink();
    EXPECT_EQ(sink(), nullptr);
    shutdownSink();  // second shutdown: no crash, no double snapshot
    EXPECT_EQ(sink(), nullptr);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    size_t snapshots = 0;
    for (std::string line; std::getline(in, line);)
        snapshots += line.find("registry_snapshot") != std::string::npos;
    EXPECT_EQ(snapshots, 1u);
    std::remove(path.c_str());
}

TEST(TelemetrySink, EmitAfterShutdownIsSafeAndDropped)
{
    const std::string path = "/tmp/sp_obs_test_late_emit.jsonl";
    installSink({.path = path});
    TelemetrySink *stale = sink();  // emitter that cached the pointer
    ASSERT_NE(stale, nullptr);
    stale->event("before", {{"n", 1}});
    shutdownSink();
    // The retired sink object stays alive: a racing emitter that read
    // the pointer before shutdown must hit a closed sink, not freed
    // memory. The event is dropped whole.
    stale->event("after", {{"n", 2}});
    stale->flush();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"ev\":\"before\""), std::string::npos);
    EXPECT_EQ(lines[1].find("{\"ev\":\"registry_snapshot\""), 0u);
    std::remove(path.c_str());
}

TEST(Registry, VisitWalksAllMetricFamiliesSorted)
{
    Registry reg;
    reg.counter("z.count").inc(4);
    reg.counter("a.count").inc(1);
    reg.gauge("mid.level").set(2.5);
    reg.histogram("lat.us").record(10.0);
    reg.histogram("lat.us").record(20.0);

    std::vector<std::string> counters;
    std::vector<std::string> gauges;
    std::vector<std::string> hists;
    reg.visit(
        [&](const std::string &name, const Counter &c) {
            counters.push_back(name + "=" + std::to_string(c.value()));
        },
        [&](const std::string &name, const Gauge &g) {
            gauges.push_back(name + "=" + std::to_string(g.value()));
        },
        [&](const std::string &name, const Histogram &h) {
            hists.push_back(name + "#" + std::to_string(h.count()));
        });
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0], "a.count=1");  // sorted
    EXPECT_EQ(counters[1], "z.count=4");
    ASSERT_EQ(gauges.size(), 1u);
    EXPECT_EQ(gauges[0].find("mid.level=2.5"), 0u);
    ASSERT_EQ(hists.size(), 1u);
    EXPECT_EQ(hists[0], "lat.us#2");
}

TEST(Registry, UnregisterGaugesWithPrefixDropsOnlyMatches)
{
    Registry reg;
    reg.gauge("run.worker.w0").set(1.0);
    reg.gauge("run.worker.w1").set(1.0);
    reg.gauge("run.workers_total").set(2.0);
    reg.gauge("other.metric").set(3.0);
    reg.unregisterGaugesWithPrefix("run.worker.w");

    const std::string snapshot = reg.snapshotJson();
    EXPECT_EQ(snapshot.find("run.worker.w0"), std::string::npos);
    EXPECT_EQ(snapshot.find("run.worker.w1"), std::string::npos);
    EXPECT_NE(snapshot.find("run.workers_total"), std::string::npos);
    EXPECT_NE(snapshot.find("other.metric"), std::string::npos);
    // Re-creating a dropped gauge starts fresh.
    EXPECT_EQ(reg.gauge("run.worker.w0").value(), 0.0);
}

TEST(Registry, ResetGaugesWithPrefixZeroesInPlace)
{
    Registry reg;
    Gauge &ratio = reg.gauge("cache.hit_ratio");
    ratio.set(0.75);
    reg.gauge("cache.depth").set(9.0);
    reg.gauge("other.metric").set(3.0);
    EXPECT_EQ(reg.resetGaugesWithPrefix("cache."), 2u);

    // Names stay registered, so handles taken before the reset are
    // still the live metric — the property the localizer hot path
    // relies on.
    EXPECT_EQ(ratio.value(), 0.0);
    ratio.set(0.5);
    EXPECT_EQ(reg.gauge("cache.hit_ratio").value(), 0.5);
    EXPECT_EQ(reg.gauge("other.metric").value(), 3.0);
    const std::string snapshot = reg.snapshotJson();
    EXPECT_NE(snapshot.find("\"cache.depth\":0"), std::string::npos);
    EXPECT_EQ(reg.resetGaugesWithPrefix("nope."), 0u);
}

TEST(Registry, ResetCountersWithPrefixZeroesInPlace)
{
    Registry reg;
    Counter &windows = reg.counter("covmap.windows");
    windows.inc(12);
    reg.counter("covmap.stray_edges").inc(3);
    reg.counter("other.events").inc(5);
    EXPECT_EQ(reg.resetCountersWithPrefix("covmap."), 2u);

    // Reset-in-place: handles taken before the reset stay live, which
    // lets the campaign engine scrub covmap.* / snowplow.cache.*
    // between runs without invalidating cached metric pointers.
    EXPECT_EQ(windows.value(), 0u);
    windows.inc(1);
    EXPECT_EQ(reg.counter("covmap.windows").value(), 1u);
    EXPECT_EQ(reg.counter("covmap.stray_edges").value(), 0u);
    EXPECT_EQ(reg.counter("other.events").value(), 5u);
    EXPECT_EQ(reg.resetCountersWithPrefix("nope."), 0u);
    // The prefix scan must not spill past the matching range.
    EXPECT_EQ(reg.resetCountersWithPrefix("covmap.z"), 0u);
}

TEST(Prometheus, RendersCountersGaugesAndSummaries)
{
    auto &reg = Registry::global();
    reg.counter("promtest.events.total").inc(7);
    reg.gauge("promtest.depth").set(1.5);
    for (int i = 1; i <= 100; ++i)
        reg.histogram("promtest.lat_us").record(i);

    const std::string text = renderPrometheus();
    // Dots sanitize to underscores, everything gains the sp_ prefix.
    EXPECT_NE(text.find("# TYPE sp_promtest_events_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("sp_promtest_events_total 7"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE sp_promtest_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("sp_promtest_depth 1.5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE sp_promtest_lat_us summary"),
              std::string::npos);
    EXPECT_NE(text.find("sp_promtest_lat_us{quantile=\"0.5\"}"),
              std::string::npos);
    EXPECT_NE(text.find("sp_promtest_lat_us_count 100"),
              std::string::npos);
    EXPECT_NE(text.find("sp_promtest_lat_us_sum"), std::string::npos);
}

}  // namespace
}  // namespace sp::obs
