file(REMOVE_RECURSE
  "CMakeFiles/sec55_perf.dir/sec55_perf.cc.o"
  "CMakeFiles/sec55_perf.dir/sec55_perf.cc.o.d"
  "sec55_perf"
  "sec55_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
