/**
 * @file
 * The fuzzing corpus: deduplicated programs that each contributed new
 * edge coverage, plus the aggregated coverage they represent. Mirrors
 * Syzkaller's corpus discipline (update_corpus in Figure 1): a mutant
 * enters the corpus iff it triggered at least one edge the corpus has
 * not seen.
 *
 * The corpus is thread-safe and sharded for the multi-worker campaign
 * engine (campaign.h): admitted entries land on one of `shards` entry
 * shards (per-shard mutex, deque storage so references stay stable),
 * while admission itself serializes on one coverage mutex so the
 * "new edges over the aggregate" decision keeps its single-threaded
 * semantics. Aggregate edge/block counts and a coverage epoch are
 * mirrored into relaxed atomics so checkpoint readers never take the
 * admission lock. A single-shard corpus (the default) draws from the
 * RNG exactly like the historical unsharded corpus did, which is what
 * keeps `--workers 1` campaigns bit-for-bit reproducible.
 */
#ifndef SP_FUZZ_CORPUS_H
#define SP_FUZZ_CORPUS_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "exec/executor.h"
#include "prog/value.h"
#include "util/rng.h"

namespace sp::fuzz {

/** One corpus entry: a program and the execution that admitted it. */
struct CorpusEntry
{
    prog::Prog program;
    exec::ExecResult result;
    uint64_t content_hash = 0;
    uint64_t admitted_at_exec = 0;  ///< executions counter at admission
};

/** Coverage-growing program set (thread-safe, optionally sharded). */
class Corpus
{
  public:
    /** @param shards  entry shards; 1 reproduces the legacy corpus. */
    explicit Corpus(size_t shards = 1);

    Corpus(const Corpus &) = delete;
    Corpus &operator=(const Corpus &) = delete;

    /**
     * Admit `program` iff its execution added edge coverage over the
     * corpus total (and it is not a duplicate). Returns true when
     * admitted. The coverage total grows either way. When `new_edges`
     * is non-null it receives the number of edges this execution added
     * to the aggregate (the legacy before/after edge delta);
     * `new_blocks` likewise for blocks (policy reward feedback).
     */
    bool maybeAdd(const prog::Prog &program,
                  const exec::ExecResult &result, uint64_t exec_counter,
                  size_t *new_edges = nullptr,
                  size_t *new_blocks = nullptr);

    /**
     * Pick an entry to mutate, biased toward recent additions. The
     * returned reference is stable (deque storage, entries immutable
     * after admission) and safe to read concurrently with admissions.
     */
    const CorpusEntry &pick(Rng &rng) const;

    /**
     * Entry by global index (shard-major enumeration). Indices are
     * stable in single-shard mode; with multiple shards concurrent
     * admissions may shift the index→entry mapping, so treat an index
     * as a momentary handle, not an identity.
     */
    const CorpusEntry &entry(size_t index) const;

    size_t size() const
    {
        return size_.load(std::memory_order_acquire);
    }
    bool empty() const { return size() == 0; }

    /**
     * Aggregated coverage over every executed program (not just kept).
     * Reading the returned set races with concurrent admissions — only
     * use it from single-threaded phases (setup, post-join reporting,
     * the legacy single-worker loop).
     */
    const exec::CoverageSet &totalCoverage() const { return total_; }

    /** @name Lock-free aggregate counters (checkpoint hot path) */
    /** @{ */
    size_t edgeCount() const
    {
        return edge_count_.load(std::memory_order_acquire);
    }
    size_t blockCount() const
    {
        return block_count_.load(std::memory_order_acquire);
    }
    /** Bumped once per admission merge that grew the aggregate. */
    uint64_t coverageEpoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }
    /** @} */

    size_t shardCount() const { return shard_count_; }

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::deque<CorpusEntry> entries;
        std::atomic<size_t> count{0};
    };

    const size_t shard_count_;
    std::unique_ptr<Shard[]> shards_;

    /** Serializes admission: aggregate coverage + content dedup. */
    mutable std::mutex cov_mu_;
    std::unordered_set<uint64_t> hashes_;
    exec::CoverageSet total_;

    std::atomic<size_t> edge_count_{0};
    std::atomic<size_t> block_count_{0};
    std::atomic<size_t> size_{0};
    std::atomic<uint64_t> epoch_{0};
};

}  // namespace sp::fuzz

#endif  // SP_FUZZ_CORPUS_H
