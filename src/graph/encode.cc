#include "graph/encode.h"

#include <algorithm>

#include "kernel/block.h"
#include "util/logging.h"

namespace sp::graph {

EncodedGraph
encodeGraph(const kern::Kernel &kernel, const QueryGraph &graph)
{
    EncodedGraph enc;
    enc.num_nodes = static_cast<int32_t>(graph.nodes.size());
    enc.node_kind.resize(graph.nodes.size());
    enc.syscall_tok.assign(graph.nodes.size(), 0);
    enc.arg_type_tok.assign(graph.nodes.size(), 0);
    enc.arg_slot_tok.assign(graph.nodes.size(), 0);
    enc.target_flag.assign(graph.nodes.size(), 0);
    enc.block_tokens.assign(
        graph.nodes.size() * EncodeVocab::kTokenWindow,
        kern::token::kPad);

    for (size_t i = 0; i < graph.nodes.size(); ++i) {
        const Node &node = graph.nodes[i];
        enc.node_kind[i] = static_cast<int32_t>(node.kind);
        switch (node.kind) {
          case NodeKind::Syscall:
            enc.syscall_tok[i] = static_cast<int32_t>(
                std::min<uint32_t>(node.syscall_id,
                                   EncodeVocab::kSyscallVocab - 1));
            break;
          case NodeKind::Argument:
            enc.arg_type_tok[i] = static_cast<int32_t>(
                std::min<uint8_t>(node.arg_type_kind,
                                  EncodeVocab::kArgTypeVocab - 1));
            enc.arg_slot_tok[i] = static_cast<int32_t>(
                std::min<uint16_t>(node.arg_slot,
                                   kern::token::kMaxSlots - 1));
            break;
          case NodeKind::Covered:
          case NodeKind::Alternative: {
            const auto &tokens = kernel.block(node.block).tokens;
            const size_t n = std::min<size_t>(
                tokens.size(), EncodeVocab::kTokenWindow);
            for (size_t t = 0; t < n; ++t) {
                enc.block_tokens[i * EncodeVocab::kTokenWindow + t] =
                    tokens[t];
            }
            enc.target_flag[i] = node.is_target ? 1 : 0;
            break;
          }
        }
    }

    for (const Edge &edge : graph.edges) {
        const auto kind = static_cast<size_t>(edge.kind);
        enc.adj[kind].src.push_back(static_cast<int32_t>(edge.src));
        enc.adj[kind].dst.push_back(static_cast<int32_t>(edge.dst));
        // Reverse relation.
        enc.adj[kNumEdgeKinds + kind].src.push_back(
            static_cast<int32_t>(edge.dst));
        enc.adj[kNumEdgeKinds + kind].dst.push_back(
            static_cast<int32_t>(edge.src));
    }

    enc.argument_nodes.reserve(graph.argument_nodes.size());
    for (uint32_t index : graph.argument_nodes)
        enc.argument_nodes.push_back(static_cast<int32_t>(index));
    return enc;
}

}  // namespace sp::graph
