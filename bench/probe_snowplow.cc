// Dev calibration probe: Snowplow vs Syzkaller head-to-head on the
// evaluation kernel — coverage and crash counts at the Table-2 budget,
// plus the per-mutation localizer quality ladder. Used to validate the
// evaluation-kernel difficulty before running the full suite; not part
// of the reproduction tables.

#include <cstdio>

#include "bench/common.h"

int
main()
{
    using namespace sp;
    kern::Kernel kernel = spbench::makeEvalKernel("6.8");
    const auto &model = spbench::sharedPmm();

    for (uint64_t seed : {101ull, 202ull}) {
        auto opts = spbench::evalFuzzOptions(42000, seed);
        auto snow = core::makeSnowplowFuzzer(
            kernel, model, opts, spbench::evalSnowplowOptions());
        auto rs = snow->run();
        auto syz = core::makeSyzkallerFuzzer(kernel, opts);
        auto rb = syz->run();
        std::printf("seed %llu: snowplow edges=%zu new=%zu known=%zu | "
                    "syzkaller edges=%zu new=%zu known=%zu\n",
                    static_cast<unsigned long long>(seed),
                    rs.final_edges, snow->crashes().newCrashes(),
                    snow->crashes().knownCrashes(), rb.final_edges,
                    syz->crashes().newCrashes(),
                    syz->crashes().knownCrashes());
    }
    return 0;
}
