#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace sp::json {

namespace {

const std::string kEmptyString;
const std::vector<Value> kEmptyArray;
const Members kEmptyMembers;

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    ParseResult run()
    {
        ParseResult result;
        skipWs();
        result.value = parseValue();
        if (ok()) {
            skipWs();
            if (pos_ != text_.size())
                fail("trailing characters after value");
        }
        result.error = error_;
        result.offset = error_pos_;
        return result;
    }

  private:
    bool ok() const { return error_.empty(); }

    void fail(const char *message)
    {
        if (ok()) {
            error_ = message;
            error_pos_ = pos_;
        }
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }

    void skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool expectLiteral(std::string_view literal)
    {
        if (text_.compare(pos_, literal.size(), literal) != 0) {
            fail("invalid literal");
            return false;
        }
        pos_ += literal.size();
        return true;
    }

    Value parseValue()
    {
        if (depth_ > kMaxDepth) {
            fail("nesting too deep");
            return Value();
        }
        switch (peek()) {
        case 'n':
            expectLiteral("null");
            return Value::makeNull();
        case 't':
            expectLiteral("true");
            return Value::makeBool(true);
        case 'f':
            expectLiteral("false");
            return Value::makeBool(false);
        case '"':
            return Value::makeString(parseString());
        case '[':
            return parseArray();
        case '{':
            return parseObject();
        default:
            return parseNumber();
        }
    }

    Value parseArray()
    {
        ++pos_;  // '['
        ++depth_;
        std::vector<Value> elems;
        skipWs();
        if (consume(']')) {
            --depth_;
            return Value::makeArray(std::move(elems));
        }
        while (ok()) {
            skipWs();
            elems.push_back(parseValue());
            skipWs();
            if (consume(']'))
                break;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                break;
            }
        }
        --depth_;
        return Value::makeArray(std::move(elems));
    }

    Value parseObject()
    {
        ++pos_;  // '{'
        ++depth_;
        Members members;
        skipWs();
        if (consume('}')) {
            --depth_;
            return Value::makeObject(std::move(members));
        }
        while (ok()) {
            skipWs();
            if (peek() != '"') {
                fail("expected string key in object");
                break;
            }
            std::string key = parseString();
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                break;
            }
            skipWs();
            members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (consume('}'))
                break;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                break;
            }
        }
        --depth_;
        return Value::makeObject(std::move(members));
    }

    std::string parseString()
    {
        ++pos_;  // '"'
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                uint32_t cp = 0;
                if (!parseHex4(cp)) {
                    fail("invalid \\u escape");
                    return out;
                }
                // Surrogate pair: a high surrogate must be followed by
                // an escaped low surrogate.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    uint32_t low = 0;
                    if (text_.compare(pos_, 2, "\\u") != 0) {
                        fail("unpaired surrogate");
                        return out;
                    }
                    pos_ += 2;
                    if (!parseHex4(low) || low < 0xDC00 ||
                        low > 0xDFFF) {
                        fail("invalid low surrogate");
                        return out;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (low - 0xDC00);
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                fail("invalid escape character");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    bool parseHex4(uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return false;
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return false;
        }
        return true;
    }

    static void appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Value parseNumber()
    {
        const size_t start = pos_;
        if (start >= text_.size()) {
            fail("unexpected end of input");
            return Value();
        }
        const bool negative = consume('-');
        while (peek() >= '0' && peek() <= '9')
            ++pos_;
        const bool integral_so_far = pos_ > start + (negative ? 1 : 0);
        bool integral = integral_so_far;
        if (consume('.')) {
            integral = false;
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            integral = false;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!integral_so_far) {
            fail("invalid number");
            return Value();
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (integral) {
            errno = 0;
            if (token[0] == '-') {
                const int64_t v =
                    std::strtoll(token.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Value::makeInt(v);
            } else {
                const uint64_t v =
                    std::strtoull(token.c_str(), nullptr, 10);
                if (errno != ERANGE)
                    return Value::makeUint(v);
            }
        }
        return Value::makeNumber(std::strtod(token.c_str(), nullptr));
    }

    static constexpr int kMaxDepth = 128;

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
    size_t error_pos_ = 0;
};

}  // namespace

bool
Value::boolean(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
Value::number(double fallback) const
{
    return kind_ == Kind::Number ? num_ : fallback;
}

int64_t
Value::asInt(int64_t fallback) const
{
    if (kind_ != Kind::Number)
        return fallback;
    if (int_exact_)
        return int_;
    if (uint_exact_ &&
        uint_ <= static_cast<uint64_t>(
                     std::numeric_limits<int64_t>::max())) {
        return static_cast<int64_t>(uint_);
    }
    return static_cast<int64_t>(num_);
}

uint64_t
Value::asUint(uint64_t fallback) const
{
    if (kind_ != Kind::Number)
        return fallback;
    if (uint_exact_)
        return uint_;
    if (int_exact_ && int_ >= 0)
        return static_cast<uint64_t>(int_);
    return num_ < 0 ? fallback : static_cast<uint64_t>(num_);
}

const std::string &
Value::str() const
{
    return kind_ == Kind::String ? str_ : kEmptyString;
}

const std::vector<Value> &
Value::array() const
{
    return kind_ == Kind::Array ? array_ : kEmptyArray;
}

const Members &
Value::members() const
{
    return kind_ == Kind::Object && members_ ? *members_
                                             : kEmptyMembers;
}

const Value *
Value::find(std::string_view key) const
{
    for (const auto &[name, value] : members()) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const Value *
Value::at(size_t index) const
{
    const auto &elems = array();
    return index < elems.size() ? &elems[index] : nullptr;
}

Value
Value::makeNull()
{
    return Value();
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

Value
Value::makeInt(int64_t i)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(i);
    v.int_ = i;
    v.int_exact_ = true;
    if (i >= 0) {
        v.uint_ = static_cast<uint64_t>(i);
        v.uint_exact_ = true;
    }
    return v;
}

Value
Value::makeUint(uint64_t u)
{
    Value v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(u);
    v.uint_ = u;
    v.uint_exact_ = true;
    if (u <= static_cast<uint64_t>(
                 std::numeric_limits<int64_t>::max())) {
        v.int_ = static_cast<int64_t>(u);
        v.int_exact_ = true;
    }
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> elems)
{
    Value v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(elems);
    return v;
}

Value
Value::makeObject(Members members)
{
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::make_shared<Members>(std::move(members));
    return v;
}

ParseResult
parse(std::string_view text)
{
    return Parser(text).run();
}

}  // namespace sp::json
