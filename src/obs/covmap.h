/**
 * @file
 * Coverage cartography: campaign-wide per-block / per-edge hit-count
 * accumulation over the executor's boolean CoverageSet.
 *
 * The boolean coverage the fuzz loop keeps (exec/coverage.h) answers
 * "was this block ever reached"; steering a campaign needs the next
 * derivative — *how often* each block and static CFG edge is exercised,
 * how that changes over time, and where execution keeps hammering a
 * branch without ever crossing it. This module supplies that surface
 * with the same hot-path discipline as the rest of src/obs:
 *
 *  - a CovMapPlan is the immutable geometry (block count, dense static
 *    edge index, per-block successor table) built once from plain data
 *    (`kernel.staticEdges()`), so sp_obs stays dependency-free;
 *  - each campaign worker owns one CovShard of relaxed-atomic counters
 *    (single writer, merge-time readers): recording a trace is two
 *    array loads and a relaxed load+store increment per visited block
 *    (no RMW lock — the writer is unique), no locks, no allocation;
 *  - the checkpoint owner (already serialized by the campaign's
 *    in-order checkpoint emission) calls onCheckpoint(), which folds
 *    every shard into the cumulative map, derives the window delta
 *    (what became newly-reached / hotter since the last checkpoint),
 *    appends a delta-encoded JSONL record to the snapshot log, updates
 *    the live frontier summary served by /coverage, and refreshes the
 *    covmap.* metrics.
 *
 * Frontier definition (plan-level, no kernel required): a *frontier
 * guard* is a reached block with two static successors of which at
 * least one was never reached; each unreached successor is a *frontier
 * target*, ranked by guard hit count (descending — the branches a
 * campaign keeps reaching but never crosses are the best directed
 * targets) with block id as the deterministic tie-break. Shard merging
 * is a commutative sum, so the final map and the ranked target set are
 * independent of worker count and merge interleaving for a fixed
 * multiset of recorded traces.
 */
#ifndef SP_OBS_COVMAP_H
#define SP_OBS_COVMAP_H

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sp::obs {

/** Immutable coverage geometry shared by every shard of one campaign. */
struct CovMapPlan
{
    /** "No block / no edge" sentinel. */
    static constexpr uint32_t kNone = ~0u;

    size_t num_blocks = 0;
    /** Dense edge id -> (from, to); unique static edges, sorted. */
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    /** Per-block static successors (kNone-padded, at most two). */
    std::vector<std::array<uint32_t, 2>> succ;
    /** Dense edge id of the corresponding successor slot. */
    std::vector<std::array<uint32_t, 2>> succ_edge;

    size_t numEdges() const { return edges.size(); }

    /**
     * Build the plan from plain CFG data. Duplicate edges are folded;
     * a block's third and further distinct successors (impossible for
     * two-way branch CFGs, tolerated for robustness) stay out of the
     * dense index and count as stray transitions at record time.
     */
    static CovMapPlan build(
        size_t num_blocks,
        const std::vector<std::pair<uint32_t, uint32_t>> &static_edges);

    /** Dense id of static edge (from, to), or kNone. */
    uint32_t edgeIndex(uint32_t from, uint32_t to) const;
};

/**
 * One worker's private hit accumulator. recordTrace is wait-free:
 * counters only this worker writes are bumped with a relaxed
 * load+store pair (exact, because the writer is unique — no RMW
 * needed); CovMap's merge reads the same counters relaxed from the
 * checkpoint owner, so the pair is race-free by construction and
 * TSan-clean.
 */
class CovShard
{
  public:
    /** Fold one call's block trace in: block hits plus consecutive-pair
     *  static-edge hits; non-static transitions tally as stray. */
    void recordTrace(const std::vector<uint32_t> &blocks);

    /** @name Relaxed reads (merge / tests) */
    /** @{ */
    uint64_t blockHits(uint32_t block) const;
    uint64_t edgeHits(uint32_t edge) const;
    uint64_t strayEdges() const
    {
        return stray_edges_.load(std::memory_order_relaxed);
    }
    /** @} */

  private:
    friend class CovMap;

    explicit CovShard(const CovMapPlan *plan);

    const CovMapPlan *plan_;
    std::unique_ptr<std::atomic<uint64_t>[]> block_hits_;
    std::unique_ptr<std::atomic<uint64_t>[]> edge_hits_;
    std::atomic<uint64_t> stray_edges_{0};
};

/** One ranked cold-frontier entry of the live summary. */
struct FrontierEntry
{
    uint32_t target = CovMapPlan::kNone;  ///< unreached successor block
    uint32_t guard = CovMapPlan::kNone;   ///< reached branch guarding it
    uint64_t guard_hits = 0;
};

/**
 * Ranked cold-frontier targets over a merged block-hit map: every
 * unreached static successor of a reached two-way branch, ordered by
 * guard hits descending then target block id ascending (deterministic).
 * `cap` > 0 truncates. Shared by the live CovMap summary and the
 * offline analyzer so both rank identically.
 */
std::vector<FrontierEntry> computeFrontier(
    const CovMapPlan &plan, const std::vector<uint64_t> &block_hits,
    size_t cap);

/** Merged state at one merge point (live summary / final report). */
struct CovSummary
{
    uint64_t execs = 0;        ///< virtual time of the merge
    uint64_t windows = 0;      ///< snapshot windows emitted so far
    size_t blocks_hit = 0;
    size_t edges_hit = 0;
    uint64_t total_block_hits = 0;
    uint64_t stray_edges = 0;
    size_t frontier_size = 0;  ///< unreached frontier targets
    /** Top frontier targets by guard hits (capped). */
    std::vector<FrontierEntry> top_frontier;
};

/** The campaign-wide accumulator: shards + merged map + snapshot log. */
class CovMap
{
  public:
    /** Frontier entries retained in the live summary. */
    static constexpr size_t kSummaryFrontierCap = 16;

    CovMap(CovMapPlan plan, size_t workers);
    ~CovMap();

    CovMap(const CovMap &) = delete;
    CovMap &operator=(const CovMap &) = delete;

    const CovMapPlan &plan() const { return plan_; }
    size_t shardCount() const { return shards_.size(); }

    /** Worker `w`'s shard. Each worker must only touch its own. */
    CovShard &shard(size_t w) { return *shards_[w]; }

    /**
     * Open the delta-encoded JSONL snapshot log and write its header
     * line. `extra_header_json` is spliced into the header object
     * (e.g. `"kernel":{"seed":7,"version":"6.8"}`); pass "" for none.
     * Returns false (and stays closed) when the file cannot be opened.
     */
    bool openLog(const std::string &path,
                 const std::string &extra_header_json = "");

    /**
     * Merge point: fold every shard into the cumulative map, emit one
     * delta window to the log (when open), refresh the live summary
     * and the covmap.* metrics. Callers must serialize merge points —
     * the campaign's in-order checkpoint emission already does.
     */
    void onCheckpoint(uint64_t execs);

    /**
     * Final merge + `covmap_final` log line + log close. Idempotent;
     * safe without an open log (still merges and refreshes summary).
     */
    void finalize(uint64_t execs);

    /** @name Merged views (fold shards now; any thread) */
    /** @{ */
    std::vector<uint64_t> mergedBlockHits() const;
    std::vector<uint64_t> mergedEdgeHits() const;
    /** @} */

    /** Latest merged summary (copy under lock). */
    CovSummary summary() const;

    /** The live summary as the /coverage JSON payload. */
    std::string summaryJson() const;

    /**
     * Ranked cold-frontier targets over the *current* shard contents
     * (merges on the fly; unbounded unless `cap` > 0). Deterministic:
     * guard hits descending, target block id ascending.
     */
    std::vector<FrontierEntry> frontierTargets(size_t cap = 0) const;

    /** Bytes resident in shards + merged map (covmap.resident_bytes). */
    size_t residentBytes() const;

  private:
    /** Fold shards into `blocks`/`edges` (sized by the plan). */
    void foldShards(std::vector<uint64_t> &blocks,
                    std::vector<uint64_t> &edges,
                    uint64_t &stray) const;

    /** Merge + window emit; caller holds mu_. */
    void mergeLocked(uint64_t execs, bool emit_window);

    const CovMapPlan plan_;
    std::vector<std::unique_ptr<CovShard>> shards_;

    mutable std::mutex mu_;
    /** Cumulative map as of the last merge point. */
    std::vector<uint64_t> merged_blocks_;
    std::vector<uint64_t> merged_edges_;
    uint64_t merged_stray_ = 0;
    CovSummary summary_;
    std::FILE *log_ = nullptr;
    bool finalized_ = false;
};

}  // namespace sp::obs

#endif  // SP_OBS_COVMAP_H
