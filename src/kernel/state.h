/**
 * @file
 * Mutable kernel state: the resource table (file descriptors, sockets,
 * devices, ...) and global state flags that system-call handlers read
 * and write. Snapshot/restore is a plain value copy, mirroring the VM
 * snapshot discipline Snowplow uses for deterministic data collection
 * (§3.1 of the paper) — but the hot path of the fast execution backend
 * uses the dirty-tracking journal instead: beginJournal() starts
 * recording an undo log of every mutation, and rollback() replays it
 * in reverse, so restoring after a program costs O(state touched)
 * rather than O(state size) (wtf-style dirty-page restore).
 *
 * Flags are stored as bytes, not std::vector<bool> bits: handlers read
 * and write individual flags on the per-block hot path, and the byte
 * representation both kills the bit-proxy overhead and makes the undo
 * log a plain (index, old byte) pair.
 */
#ifndef SP_KERNEL_STATE_H
#define SP_KERNEL_STATE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sp::kern {

/** Id of a resource kind within a kernel (dense, small). */
using ResourceKindId = uint16_t;

/** One live-or-dead kernel object. */
struct Resource
{
    ResourceKindId kind = 0;
    bool alive = false;
};

/**
 * The kernel's mutable state. Resource ids are 1-based (0 and
 * prog::kBadHandle are never valid), so a zero-initialized argument slot
 * can never name a live resource by accident.
 */
class KernelState
{
  public:
    /** @param num_flags number of global state flags in this kernel. */
    explicit KernelState(uint16_t num_flags = 0);

    /** Allocate a resource of `kind`; returns its id. */
    uint64_t allocResource(ResourceKindId kind);

    /** True when `id` names a live resource. */
    bool alive(uint64_t id) const;

    /** True when `id` names a live resource of kind `kind`. */
    bool aliveOfKind(uint64_t id, ResourceKindId kind) const;

    /** Kind of resource `id` (fatal when not alive). */
    ResourceKindId kindOf(uint64_t id) const;

    /** Release resource `id` (no-op when not alive). */
    void release(uint64_t id);

    /** Number of live resources. */
    size_t liveCount() const;

    /** @name State flags */
    /** @{ */
    void setFlag(uint16_t index, bool value);
    bool flag(uint16_t index) const;
    uint16_t numFlags() const
    {
        return static_cast<uint16_t>(flags_.size());
    }
    /** @} */

    /** Value-copy snapshot. */
    KernelState snapshot() const { return *this; }

    /** @name Dirty-tracking restore (fast execution backend) */
    /** @{ */
    /**
     * Mark the current state as the restore point and start journaling
     * every mutation (flag writes, releases of pre-existing resources,
     * allocations). Stays in effect across rollback() calls; the undo
     * log's capacity is retained so steady-state journaling never
     * allocates.
     */
    void beginJournal();

    /**
     * Undo every mutation since beginJournal() (or since the last
     * rollback): journaled flag/alive entries are replayed in reverse
     * and resources allocated since the restore point are truncated
     * away. Cost is proportional to the number of journal entries,
     * not to the state's size. Journaling remains armed.
     */
    void rollback();

    /**
     * Mutations journaled since the restore point: undo-log entries
     * plus resources allocated on top of it (the `exec.dirty_entries`
     * metric). Meaningful only while journaling.
     */
    size_t dirtyCount() const
    {
        return undo_.size() + (resources_.size() - journal_resources_);
    }

    bool journaling() const { return journaling_; }
    /** @} */

  private:
    /** One reversible mutation (flag write or resource release). */
    struct UndoEntry
    {
        uint32_t index = 0;    ///< flag index or resource slot
        uint8_t old_value = 0; ///< previous byte / alive bit
        bool is_flag = false;
    };

    std::vector<Resource> resources_;
    std::vector<uint8_t> flags_;
    std::vector<UndoEntry> undo_;
    size_t journal_resources_ = 0;  ///< resource count at restore point
    bool journaling_ = false;
};

}  // namespace sp::kern

#endif  // SP_KERNEL_STATE_H
