/**
 * @file
 * Streaming training loader: background prefetch of materialized
 * examples behind the core::ExampleSource contract.
 *
 * The expensive half of serving one training example is not disk I/O —
 * raw examples are tiny — but materialization: building the base's
 * query graph with the example's targets marked and encoding it
 * (core::materializeExampleInto). The in-memory source pays that cost
 * for the whole working set up front and holds every encoding
 * resident; StreamSource instead materializes on demand from the
 * loaded store, with N prefetch threads racing ahead of the trainer
 * through a bounded reorder window.
 *
 * Determinism: the trainer owns all randomness (it draws the candidate
 * shuffle and each epoch's permutation from its own RNG) and hands
 * StreamSource the exact position order to serve. Prefetch threads
 * claim positions in order and publish into a ring indexed by
 * position, and next() consumes positions strictly in order — so the
 * batch sequence is identical to InMemorySource's no matter how the
 * producer threads interleave, and trainPmmFromSource produces
 * bit-identical SelectorMetrics from either source for the same seed.
 *
 * Observability: `data.loader_queue_depth` (gauge, prefetched examples
 * waiting at each consume) and `data.loader_stall_us` (histogram, time
 * the trainer waited for an example that was not ready).
 */
#ifndef SP_DATA_LOADER_H
#define SP_DATA_LOADER_H

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/train.h"

namespace sp::data {

/** StreamSource configuration. */
struct LoaderOptions
{
    /** Background materializer threads. */
    size_t prefetch_threads = 2;
    /**
     * Reorder-window slots (bound on both memory and how far
     * producers may run ahead of the trainer).
     */
    size_t window = 64;
};

/** Streaming ExampleSource over a loaded dataset (see file comment). */
class StreamSource : public core::ExampleSource
{
  public:
    explicit StreamSource(const core::Dataset &dataset,
                          LoaderOptions opts = {});
    ~StreamSource() override;

    StreamSource(const StreamSource &) = delete;
    StreamSource &operator=(const StreamSource &) = delete;

    size_t prepare(Rng &rng, size_t per_epoch) override;
    void beginEpoch(const std::vector<size_t> &order) override;
    std::pair<const graph::EncodedGraph *, const std::vector<float> *>
    next() override;

  private:
    struct Slot
    {
        graph::EncodedGraph graph;
        std::vector<float> labels;
        bool ready = false;
    };

    void producerLoop();
    void stopThreads();

    const core::Dataset &dataset_;
    LoaderOptions opts_;
    /** Train-split indices of the kept working set (prepare()). */
    std::vector<size_t> kept_;

    std::mutex mu_;
    std::condition_variable can_produce_;
    std::condition_variable can_consume_;
    const std::vector<size_t> *order_ = nullptr;
    size_t total_ = 0;
    size_t produce_next_ = 0;
    size_t consume_next_ = 0;
    bool stop_ = false;
    std::vector<Slot> ring_;
    std::vector<std::thread> threads_;

    /** The example handed out by the last next() call. */
    std::pair<graph::EncodedGraph, std::vector<float>> current_;
};

}  // namespace sp::data

#endif  // SP_DATA_LOADER_H
