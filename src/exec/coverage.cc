#include "exec/coverage.h"

#include <algorithm>

namespace sp::exec {

void
CoverageSet::promote() const
{
    if (!staged_)
        return;
    staged_ = false;
    blocks_.reserve(blocks_.size() + staged_blocks_.size());
    edges_.reserve(edges_.size() + staged_edges_.size());
    blocks_.insert(staged_blocks_.begin(), staged_blocks_.end());
    edges_.insert(staged_edges_.begin(), staged_edges_.end());
    staged_blocks_.clear();
    staged_blocks_.shrink_to_fit();
    staged_edges_.clear();
    staged_edges_.shrink_to_fit();
}

void
CoverageSet::addTrace(const std::vector<uint32_t> &trace)
{
    promote();
    for (size_t i = 0; i < trace.size(); ++i) {
        blocks_.insert(trace[i]);
        if (i + 1 < trace.size())
            edges_.insert(edgeKey(trace[i], trace[i + 1]));
    }
}

void
CoverageSet::addUnique(const std::vector<uint32_t> &blocks,
                       const std::vector<uint64_t> &edges)
{
    if (!staged_ && blocks_.empty() && edges_.empty()) {
        // Fresh set (the per-exec conversion boundary): stage only.
        staged_blocks_ = blocks;
        staged_edges_ = edges;
        staged_ = !staged_blocks_.empty() || !staged_edges_.empty();
        return;
    }
    promote();
    blocks_.reserve(blocks_.size() + blocks.size());
    edges_.reserve(edges_.size() + edges.size());
    blocks_.insert(blocks.begin(), blocks.end());
    edges_.insert(edges.begin(), edges.end());
}

void
CoverageSet::merge(const CoverageSet &other)
{
    promote();
    other.eachBlock([&](uint32_t b) { blocks_.insert(b); });
    other.eachEdge([&](uint64_t e) { edges_.insert(e); });
}

size_t
CoverageSet::countNewBlocks(const CoverageSet &other) const
{
    promote();
    size_t count = 0;
    other.eachBlock([&](uint32_t b) { count += (blocks_.count(b) == 0); });
    return count;
}

size_t
CoverageSet::countNewEdges(const CoverageSet &other) const
{
    promote();
    size_t count = 0;
    other.eachEdge([&](uint64_t e) { count += (edges_.count(e) == 0); });
    return count;
}

std::vector<uint32_t>
CoverageSet::newBlocks(const CoverageSet &other) const
{
    promote();
    std::vector<uint32_t> result;
    other.eachBlock([&](uint32_t b) {
        if (blocks_.count(b) == 0)
            result.push_back(b);
    });
    return result;
}

bool
CoverageSet::containsBlock(uint32_t block) const
{
    if (staged_) {
        return std::find(staged_blocks_.begin(), staged_blocks_.end(),
                         block) != staged_blocks_.end();
    }
    return blocks_.count(block) != 0;
}

bool
CoverageSet::containsEdge(uint32_t from, uint32_t to) const
{
    const uint64_t key = edgeKey(from, to);
    if (staged_) {
        return std::find(staged_edges_.begin(), staged_edges_.end(),
                         key) != staged_edges_.end();
    }
    return edges_.count(key) != 0;
}

void
DenseCoverage::bind(const Successors *succ, size_t num_blocks)
{
    succ_ = succ;
    if (block_epoch_.size() != num_blocks) {
        block_epoch_.assign(num_blocks, 0);
        edge_epoch_.assign(num_blocks * 2, 0);
        epoch_ = 0;
    }
}

void
DenseCoverage::beginExec()
{
    if (++epoch_ == 0) {
        // Epoch counter wrapped: stale stamps from 4B execs ago could
        // alias, so pay one full clear and restart at 1.
        std::fill(block_epoch_.begin(), block_epoch_.end(), 0);
        std::fill(edge_epoch_.begin(), edge_epoch_.end(), 0);
        epoch_ = 1;
    }
    touched_blocks_.clear();
    touched_edges_.clear();
    stray_edges_.clear();
}

void
DenseCoverage::addTrace(const uint32_t *trace, size_t len)
{
    for (size_t i = 0; i < len; ++i) {
        const uint32_t block = trace[i];
        if (block_epoch_[block] != epoch_) {
            block_epoch_[block] = epoch_;
            touched_blocks_.push_back(block);
        }
        if (i + 1 == len)
            continue;
        const uint32_t to = trace[i + 1];
        const Successors &succ = succ_[block];
        if (to == succ.taken || to == succ.fallthrough) {
            const size_t slot =
                static_cast<size_t>(block) * 2 + (to != succ.taken);
            if (edge_epoch_[slot] != epoch_) {
                edge_epoch_[slot] = epoch_;
                touched_edges_.push_back(edgeKey(block, to));
            }
        } else {
            // Stray interrupt-noise transition: not in the static CFG.
            // At most one per call, so the linear dedup scan is cheap.
            const uint64_t key = edgeKey(block, to);
            if (std::find(stray_edges_.begin(), stray_edges_.end(),
                          key) == stray_edges_.end()) {
                stray_edges_.push_back(key);
                touched_edges_.push_back(key);
            }
        }
    }
}

}  // namespace sp::exec
