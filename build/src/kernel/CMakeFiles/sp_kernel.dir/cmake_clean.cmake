file(REMOVE_RECURSE
  "CMakeFiles/sp_kernel.dir/builder.cc.o"
  "CMakeFiles/sp_kernel.dir/builder.cc.o.d"
  "CMakeFiles/sp_kernel.dir/cond.cc.o"
  "CMakeFiles/sp_kernel.dir/cond.cc.o.d"
  "CMakeFiles/sp_kernel.dir/kernel.cc.o"
  "CMakeFiles/sp_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/sp_kernel.dir/kernel_gen.cc.o"
  "CMakeFiles/sp_kernel.dir/kernel_gen.cc.o.d"
  "CMakeFiles/sp_kernel.dir/state.cc.o"
  "CMakeFiles/sp_kernel.dir/state.cc.o.d"
  "CMakeFiles/sp_kernel.dir/subsystems.cc.o"
  "CMakeFiles/sp_kernel.dir/subsystems.cc.o.d"
  "libsp_kernel.a"
  "libsp_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sp_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
