/**
 * @file
 * Crash-report rendering: the syz-symbolize analog. Formats a
 * deduplicated crash into a kernel-console-style report — detector
 * banner, "call stack" of the basic blocks executed inside the
 * crashing handler with their branch conditions, the triggering call,
 * and the minimized reproducer — the artifact the paper's authors
 * attach when reporting bugs to kernel developers (§5.3.2).
 */
#ifndef SP_FUZZ_REPORT_H
#define SP_FUZZ_REPORT_H

#include <string>

#include "fuzz/crash.h"

namespace sp::fuzz {

/**
 * Render one crash record as a console-style report. Re-executes the
 * reproducer (or trigger) deterministically to recover the block trace
 * of the crashing call; flaky crashes that do not re-trigger get a
 * report without the trace section.
 */
std::string formatCrashReport(const kern::Kernel &kernel,
                              const CrashRecord &record);

}  // namespace sp::fuzz

#endif  // SP_FUZZ_REPORT_H
